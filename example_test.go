package congestedclique_test

// Runnable examples for the session API, rendered on pkg.go.dev and executed
// by go test: every // Output: block below is checked, so the snippets can
// not rot. All operations here are deterministic, which is what makes exact
// expected output possible.

import (
	"context"
	"fmt"
	"log"

	cc "congestedclique"
)

// Example demonstrates the canonical session workflow: build one Clique
// handle, run operations on it, read the aggregated statistics, close it.
func Example() {
	cl, err := cc.New(16)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Node 3 sends one message to node 7.
	msgs := make([][]cc.Message, 16)
	msgs[3] = []cc.Message{{Src: 3, Dst: 7, Seq: 0, Payload: 42}}
	res, err := cl.Route(ctx, msgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 7 received payload", res.Delivered[7][0].Payload)
	// Output:
	// node 7 received payload 42
}

// ExampleNew shows handle construction with options: a strict bandwidth cap
// asserts the O(log n)-bits-per-edge model, and the algorithm passed to New
// becomes the handle's default for every call.
func ExampleNew() {
	cl, err := cc.New(16,
		cc.WithStrictBandwidth(64),
		cc.WithAlgorithm(cc.Deterministic),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Println("nodes:", cl.N())
	// Output:
	// nodes: 16
}

// ExampleClique_Route routes a full-load instance and reports the cost
// observables the paper's bounds are stated in (Theorem 3.7: at most 16
// rounds).
func ExampleClique_Route() {
	const n = 16
	cl, err := cc.New(n)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Every node sends one message to every node.
	msgs := make([][]cc.Message, n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			msgs[src] = append(msgs[src], cc.Message{Src: src, Dst: dst, Seq: dst, Payload: int64(src*n + dst)})
		}
	}
	res, err := cl.Route(context.Background(), msgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rounds:", res.Stats.Rounds)
	fmt.Println("messages delivered to node 0:", len(res.Delivered[0]))
	// Output:
	// rounds: 16
	// messages delivered to node 0: 16
}

// ExampleClique_Sort sorts one value per node; node i receives the i-th
// batch of the global order (Theorem 4.5).
func ExampleClique_Sort() {
	const n = 8
	cl, err := cc.New(n)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	values := [][]int64{{52}, {11}, {97}, {3}, {70}, {24}, {88}, {41}}
	res, err := cl.Sort(context.Background(), values)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		fmt.Print(res.Batches[i][0].Value, " ")
	}
	fmt.Println()
	// Output:
	// 3 11 24 41 52 70 88 97
}

// ExampleClique_CumulativeStats aggregates cost across a handle's lifetime:
// totals are summed over operations, maxima taken over operations.
func ExampleClique_CumulativeStats() {
	const n = 16
	cl, err := cc.New(n)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	msgs := make([][]cc.Message, n)
	msgs[0] = []cc.Message{{Src: 0, Dst: 1, Seq: 0, Payload: 7}}
	for i := 0; i < 3; i++ {
		if _, err := cl.Route(ctx, msgs); err != nil {
			log.Fatal(err)
		}
	}
	total := cl.CumulativeStats()
	fmt.Println("operations:", total.Operations)
	// Output:
	// operations: 3
}

// ExampleWithMaxConcurrency builds a handle whose engine pool lets up to 4
// independent operations run in parallel; results are bit-identical to
// serial execution for every concurrency.
func ExampleWithMaxConcurrency() {
	cl, err := cc.New(16, cc.WithMaxConcurrency(4))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Println("parallel operations allowed:", cl.MaxConcurrency())
	// Output:
	// parallel operations allowed: 4
}

// ExampleWithAlgorithm selects the demand-aware planner per call: a sparse
// instance takes the one-round direct path instead of the 16-round pipeline,
// and RouteResult.Strategy reports the choice.
func ExampleWithAlgorithm() {
	const n = 16
	cl, err := cc.New(n)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	msgs := make([][]cc.Message, n)
	msgs[2] = []cc.Message{{Src: 2, Dst: 9, Seq: 0, Payload: 5}}
	res, err := cl.Route(context.Background(), msgs, cc.WithAlgorithm(cc.AlgorithmAuto))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strategy:", res.Strategy)
	fmt.Println("rounds:", res.Stats.Rounds)
	// Output:
	// strategy: direct
	// rounds: 1
}
