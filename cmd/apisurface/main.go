// Command apisurface renders the exported API surface of a Go package —
// exported functions, methods on exported receivers, exported types with
// their exported fields, constants and variables — as a stable, sorted text
// document. CI regenerates the surface on every build and compares it
// against the committed API_SURFACE.txt, so an unintended breaking change to
// the public package (a removed function, a changed signature, a renamed
// field) fails the pipeline instead of reaching a release; deliberate
// changes are made visible in review by updating the committed file:
//
//	go run ./cmd/apisurface -dir . -write API_SURFACE.txt   # update
//	go run ./cmd/apisurface -dir . -check API_SURFACE.txt   # verify (CI)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"log"
	"os"
	"sort"
	"strings"
)

func main() {
	log.SetFlags(0)
	dir := flag.String("dir", ".", "directory of the package to describe")
	check := flag.String("check", "", "compare the surface against this file and fail on any difference")
	write := flag.String("write", "", "write the surface to this file")
	flag.Parse()

	surface, err := packageSurface(*dir)
	if err != nil {
		log.Fatalf("apisurface: %v", err)
	}
	out := strings.Join(surface, "\n") + "\n"

	switch {
	case *check != "":
		want, err := os.ReadFile(*check)
		if err != nil {
			log.Fatalf("apisurface: read %s: %v", *check, err)
		}
		if string(want) != out {
			log.Printf("apisurface: exported surface differs from %s", *check)
			diffLines(string(want), out)
			log.Fatalf("apisurface: if the change is intentional, regenerate with: go run ./cmd/apisurface -dir %s -write %s", *dir, *check)
		}
		fmt.Printf("apisurface: %d exported declarations match %s\n", len(surface), *check)
	case *write != "":
		if err := os.WriteFile(*write, []byte(out), 0o644); err != nil {
			log.Fatalf("apisurface: write %s: %v", *write, err)
		}
		fmt.Printf("apisurface: wrote %d exported declarations to %s\n", len(surface), *write)
	default:
		fmt.Print(out)
	}
}

// diffLines prints a minimal line diff (removed/added) between two surfaces.
func diffLines(want, got string) {
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool)
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			log.Printf("  - %s", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			log.Printf("  + %s", l)
		}
	}
}

// packageSurface parses every non-test file of the package in dir and
// returns its exported declarations as sorted, canonicalised one-per-entry
// strings.
func packageSurface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var entries []string
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") || pkg.Name == "main" {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				entries = append(entries, declSurface(fset, decl)...)
			}
		}
	}
	sort.Strings(entries)
	return entries, nil
}

// declSurface renders the exported parts of one top-level declaration.
func declSurface(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return nil
		}
		fn := *d
		fn.Body = nil
		fn.Doc = nil
		return []string{render(fset, &fn)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				ts := *s
				ts.Doc, ts.Comment = nil, nil
				ts.Type = filterType(s.Type)
				one := &ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{&ts}}
				out = append(out, render(fset, one))
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					entry := d.Tok.String() + " " + name.Name
					if s.Type != nil {
						entry += " " + render(fset, s.Type)
					} else if i < len(s.Values) {
						entry += " = " + render(fset, s.Values[i])
					}
					out = append(out, entry)
				}
			}
		}
		return out
	}
	return nil
}

// exportedReceiver reports whether a method's receiver type is exported
// (plain functions always qualify).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// filterType strips unexported members from struct and interface types so
// the surface only tracks what callers can rely on.
func filterType(t ast.Expr) ast.Expr {
	switch x := t.(type) {
	case *ast.StructType:
		if x.Fields == nil {
			return t
		}
		kept := &ast.FieldList{}
		for _, f := range x.Fields.List {
			nf := *f
			nf.Doc, nf.Comment = nil, nil
			if len(f.Names) == 0 { // embedded field
				kept.List = append(kept.List, &nf)
				continue
			}
			var names []*ast.Ident
			for _, n := range f.Names {
				if n.IsExported() {
					names = append(names, n)
				}
			}
			if len(names) == 0 {
				continue
			}
			nf.Names = names
			kept.List = append(kept.List, &nf)
		}
		return &ast.StructType{Struct: x.Struct, Fields: kept}
	case *ast.InterfaceType:
		if x.Methods == nil {
			return t
		}
		kept := &ast.FieldList{}
		for _, m := range x.Methods.List {
			nm := *m
			nm.Doc, nm.Comment = nil, nil
			if len(m.Names) == 0 || m.Names[0].IsExported() {
				kept.List = append(kept.List, &nm)
			}
		}
		return &ast.InterfaceType{Interface: x.Interface, Methods: kept}
	default:
		return t
	}
}

// render prints one node in canonical single-spaced form.
func render(fset *token.FileSet, node interface{}) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<unprintable: %v>", err)
	}
	s := buf.String()
	// Collapse the printer's multi-line layout into one entry per declaration
	// so the committed file diffs line by line.
	s = strings.ReplaceAll(s, "\n", " ")
	s = strings.ReplaceAll(s, "\t", " ")
	for strings.Contains(s, "  ") {
		s = strings.ReplaceAll(s, "  ", " ")
	}
	return strings.TrimSpace(s)
}
