package main

// The -temporal mode: execute each temporal trace step by step on a
// plan-cached handle (census charged) and on a plain AlgorithmAuto handle,
// deep-compare every step between the two, and record hit rate and net
// speedup. The comparison is deliberately asymmetric in the cache side's
// favor never being assumed: the cached handle pays the census on every step
// and the schedule capture on every miss, while the plain handle pays
// neither, so NetSpeedup is the end-to-end figure a caller with bursty
// demand would actually see.

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	cc "congestedclique"

	"congestedclique/internal/experiments"
	"congestedclique/internal/tables"
	"congestedclique/internal/workload"
)

func runTemporalCatalog(n int, seed int64, names string, cacheCap int, jsonPath, outPath string, markdown bool) error {
	scenarios, err := selectTemporalScenarios(names)
	if err != nil {
		return err
	}
	section := &experiments.TemporalSection{
		Tool:   "cliquescen",
		Schema: "congestedclique/bench-temporal/v1",
		Seed:   seed,
		Note:   "net speedup: the cached handle pays the charged census every step and the schedule capture on every miss; every step verified bit-identical to the cache-off handle",
	}
	for _, sc := range scenarios {
		row, err := runTemporalScenario(sc, n, seed, cacheCap)
		if err != nil {
			return fmt.Errorf("temporal scenario %s: %w", sc.Name, err)
		}
		section.MergeTemporalRun(row)
	}

	rendered := renderTemporalTable(section, n, markdown)
	fmt.Println(rendered)
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(rendered+"\n"), 0o644); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		doc, err := experiments.ReadProtocolDoc(jsonPath)
		if err != nil {
			return err
		}
		if doc.Temporal != nil {
			// Preserve rows of other (scenario, n) keys from earlier runs.
			for _, row := range section.Entries {
				doc.Temporal.MergeTemporalRun(row)
			}
			doc.Temporal.Tool = section.Tool
			doc.Temporal.Schema = section.Schema
			doc.Temporal.Seed = section.Seed
			doc.Temporal.Note = section.Note
		} else {
			doc.Temporal = section
		}
		if doc.Tool == "" {
			doc.Tool = "cliquescen"
			doc.Schema = "congestedclique/bench-protocol/v1"
		}
		if err := experiments.WriteProtocolDoc(jsonPath, doc); err != nil {
			return err
		}
		fmt.Printf("temporal section written to %s\n", jsonPath)
	}
	return nil
}

func selectTemporalScenarios(names string) ([]workload.TemporalScenario, error) {
	if names == "all" || names == "" {
		return workload.TemporalScenarios(), nil
	}
	var out []workload.TemporalScenario
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		sc, ok := workload.TemporalScenarioByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown temporal scenario %q (known: %s)", name, strings.Join(workload.TemporalScenarioNames(), ", "))
		}
		out = append(out, sc)
	}
	return out, nil
}

// runTemporalScenario executes one trace on both handles. Both engines are
// warmed with one Deterministic run of the first instance — call-scoped, so
// it touches neither the planner nor the cache — before the measured window.
func runTemporalScenario(sc workload.TemporalScenario, n int, seed int64, cacheCap int) (experiments.TemporalBench, error) {
	tr, err := sc.Build(n, seed)
	if err != nil {
		return experiments.TemporalBench{}, err
	}
	if err := workload.ValidateTrace(tr); err != nil {
		return experiments.TemporalBench{}, err
	}
	instances := make([][][]cc.Message, len(tr.Distinct))
	for v, ri := range tr.Distinct {
		msgs := make([][]cc.Message, n)
		for i, row := range ri.Msgs {
			for _, m := range row {
				msgs[i] = append(msgs[i], cc.Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: int64(m.Payload)})
			}
		}
		instances[v] = msgs
	}

	ctx := context.Background()
	off, err := cc.New(n, cc.WithAlgorithm(cc.AlgorithmAuto))
	if err != nil {
		return experiments.TemporalBench{}, err
	}
	defer off.Close()
	on, err := cc.New(n, cc.WithAlgorithm(cc.AlgorithmAuto), cc.WithPlanCache(cacheCap))
	if err != nil {
		return experiments.TemporalBench{}, err
	}
	defer on.Close()
	for _, cl := range []*cc.Clique{off, on} {
		if _, err := cl.Route(ctx, instances[0], cc.WithAlgorithm(cc.Deterministic)); err != nil {
			return experiments.TemporalBench{}, err
		}
	}

	row := experiments.TemporalBench{
		Scenario:          sc.Name,
		N:                 n,
		Steps:             tr.Steps(),
		DistinctInstances: len(tr.Distinct),
	}
	var offNs, onNs int64
	seen := make([]bool, len(tr.Distinct))
	for t, k := range tr.Sequence {
		msgs := instances[k]
		start := time.Now()
		want, err := off.Route(ctx, msgs)
		if err != nil {
			return experiments.TemporalBench{}, err
		}
		offNs += time.Since(start).Nanoseconds()
		start = time.Now()
		got, err := on.Route(ctx, msgs)
		if err != nil {
			return experiments.TemporalBench{}, err
		}
		onNs += time.Since(start).Nanoseconds()
		if err := sameDelivery(got, want); err != nil {
			return experiments.TemporalBench{}, fmt.Errorf("step %d (instance %d): cached delivery diverges from cache-off: %w", t, k, err)
		}
		if got.Strategy != want.Strategy {
			return experiments.TemporalBench{}, fmt.Errorf("step %d: cached strategy %v vs cache-off %v", t, got.Strategy, want.Strategy)
		}
		row.Strategy = got.Strategy.String()
		row.CacheOffRounds = want.Stats.Rounds
		row.CacheOffTotalWords += want.Stats.TotalWords
		row.CacheOnTotalWords += got.Stats.TotalWords
		if seen[k] {
			row.HitRounds = got.Stats.Rounds
		} else {
			row.MissRounds = got.Stats.Rounds
			seen[k] = true
		}
	}
	row.Verified = true
	cs := on.CumulativeStats()
	row.CacheHits, row.CacheMisses = cs.PlanCacheHits, cs.PlanCacheMisses
	if lookups := cs.PlanCacheHits + cs.PlanCacheMisses; lookups > 0 {
		row.HitRate = float64(cs.PlanCacheHits) / float64(lookups)
	}
	steps := int64(tr.Steps())
	row.CacheOffNsPerOp = offNs / steps
	row.CacheOnNsPerOp = onNs / steps
	if onNs > 0 {
		row.NetSpeedup = float64(offNs) / float64(onNs)
	}
	return row, nil
}

func renderTemporalTable(section *experiments.TemporalSection, n int, markdown bool) string {
	t := tables.New(
		fmt.Sprintf("Temporal catalog, n=%d seed=%d (plan cache + charged census vs plain AlgorithmAuto)", n, section.Seed),
		"scenario", "strategy", "steps", "distinct", "hits", "misses", "hit rate", "rounds off/miss/hit", "words off", "words on", "ms/op off", "ms/op on", "net speedup",
	)
	for _, e := range section.Entries {
		t.AddRow(e.Scenario, e.Strategy, e.Steps, e.DistinctInstances, e.CacheHits, e.CacheMisses,
			fmt.Sprintf("%.1f%%", e.HitRate*100),
			fmt.Sprintf("%d/%d/%d", e.CacheOffRounds, e.MissRounds, e.HitRounds),
			e.CacheOffTotalWords, e.CacheOnTotalWords,
			fmt.Sprintf("%.2f", float64(e.CacheOffNsPerOp)/1e6),
			fmt.Sprintf("%.2f", float64(e.CacheOnNsPerOp)/1e6),
			fmt.Sprintf("%.2fx", e.NetSpeedup))
	}
	if markdown {
		return t.Markdown()
	}
	return t.String()
}
