// Command cliquescen runs the routing and sorting scenario catalogs through
// the demand-aware planners (AlgorithmAuto) and reports, per scenario, the
// chosen strategy and its cost — rounds, per-edge words, total words,
// allocations and wall time — next to the word cost of the full
// deterministic pipeline on the identical instance, and (for routing
// scenarios) of the randomized Valiant-style two-hop baseline. Every planned
// delivery (or sorted batch) is verified element by element against the
// pipeline's before its numbers are reported.
//
// With -json the results are merged into the scenarios section of
// BENCH_protocol.json (the other sections, owned by cliquebench, are
// preserved); with -out the rendered table is additionally written to a
// file, which CI uploads as an artifact.
//
// With -temporal the tool runs the temporal catalog instead: bursty
// sequences of routing instances executed step by step on one handle with
// the cross-run plan cache armed (WithPlanCache, census charged) next to a
// plain AlgorithmAuto handle, every step deep-compared between the two. The
// recorded speedup is net of all caching overhead; results merge into the
// temporal section of BENCH_protocol.json.
//
// With -chaos the tool runs the chaos catalog instead: every scenario injects
// a deterministic fault plan (node panic, straggler stall, cancellation at a
// barrier turn-over) through the public option set, runs it twice to confirm
// the replay is deterministic, and cross-checks every surviving run bit for
// bit against a fault-free golden on the identical instance.
//
// Examples:
//
//	cliquescen -n 256
//	cliquescen -n 256 -json BENCH_protocol.json
//	cliquescen -n 64 -scenarios sparse,multicast,uniform-full -markdown
//	cliquescen -n 64 -chaos -out chaos_table.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	cc "congestedclique"

	"congestedclique/internal/core"
	"congestedclique/internal/experiments"
	"congestedclique/internal/tables"
	"congestedclique/internal/workload"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 256, "number of clique nodes")
		seed      = flag.Int64("seed", 1, "workload seed")
		names     = flag.String("scenarios", "all", "comma-separated scenario names (see -list), or all")
		list      = flag.Bool("list", false, "list the scenario catalog and exit")
		chaos     = flag.Bool("chaos", false, "run the chaos catalog (deterministic fault injection) instead of the bench catalog")
		temporal  = flag.Bool("temporal", false, "run the temporal catalog (cross-run plan cache on bursty instance sequences) instead of the bench catalog")
		cacheCap  = flag.Int("plan-cache", 8, "plan-cache capacity for -temporal runs")
		iters     = flag.Int("iters", 1, "measured iterations per scenario (after one warm-up)")
		jsonPath  = flag.String("json", "", "merge results into the scenarios section of this BENCH_protocol.json")
		outPath   = flag.String("out", "", "also write the rendered table to this file")
		markdown  = flag.Bool("markdown", false, "render the table as markdown")
		noPipe    = flag.Bool("skip-pipeline", false, "skip the deterministic-pipeline comparison run (faster; disables verification and the words_vs_pipeline column)")
		verifyRes = flag.Bool("verify", true, "verify planned deliveries against the deterministic pipeline (needs the comparison run)")
	)
	flag.Parse()
	if *noPipe {
		verifyExplicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "verify" {
				verifyExplicit = true
			}
		})
		if verifyExplicit && *verifyRes {
			return fmt.Errorf("-skip-pipeline and -verify are mutually exclusive: verification needs the pipeline comparison run")
		}
		*verifyRes = false
	}
	if *list {
		if *chaos {
			for _, s := range workload.ChaosScenarios() {
				fmt.Printf("%-24s %s\n", s.Name, s.Description)
			}
			return nil
		}
		if *temporal {
			for _, s := range workload.TemporalScenarios() {
				fmt.Printf("%-20s %s\n", s.Name, s.Description)
			}
			return nil
		}
		for _, s := range workload.Scenarios() {
			fmt.Printf("%-20s %s\n", s.Name, s.Description)
		}
		for _, s := range workload.SortScenarios() {
			fmt.Printf("%-20s %s\n", s.Name, s.Description)
		}
		return nil
	}
	if *temporal {
		return runTemporalCatalog(*n, *seed, *names, *cacheCap, *jsonPath, *outPath, *markdown)
	}
	if *chaos {
		rendered, err := runChaos(*n, *names, *markdown)
		if err != nil {
			return err
		}
		fmt.Println(rendered)
		if *outPath != "" {
			if err := os.WriteFile(*outPath, []byte(rendered+"\n"), 0o644); err != nil {
				return err
			}
		}
		return nil
	}
	if *iters < 1 {
		return fmt.Errorf("-iters must be at least 1, got %d", *iters)
	}
	scenarios, sortScenarios, err := selectScenarios(*names)
	if err != nil {
		return err
	}
	comparePipeline := !*noPipe

	cl, err := cc.New(*n)
	if err != nil {
		return err
	}
	defer cl.Close()

	section := &experiments.ScenarioSection{
		Tool:   "cliquescen",
		Schema: "congestedclique/bench-scenarios/v1",
		N:      *n,
		Seed:   *seed,
	}
	for _, sc := range scenarios {
		row, err := runScenario(cl, sc, *n, *seed, *iters, comparePipeline, *verifyRes)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		section.Entries = append(section.Entries, row)
	}
	for _, sc := range sortScenarios {
		row, err := runSortScenario(cl, sc, *n, *seed, *iters, comparePipeline, *verifyRes)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		section.Entries = append(section.Entries, row)
	}

	rendered := renderTable(section, *markdown)
	fmt.Println(rendered)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(rendered+"\n"), 0o644); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		doc, err := experiments.ReadProtocolDoc(*jsonPath)
		if err != nil {
			return err
		}
		doc.Scenarios = section
		if doc.Tool == "" {
			doc.Tool = "cliquescen"
			doc.Schema = "congestedclique/bench-protocol/v1"
		}
		if err := experiments.WriteProtocolDoc(*jsonPath, doc); err != nil {
			return err
		}
		fmt.Printf("scenarios section written to %s\n", *jsonPath)
	}
	return nil
}

// selectScenarios resolves the -scenarios flag against both catalogs:
// routing scenarios and sorting scenarios may be mixed freely, and "all"
// runs both catalogs in canonical order.
func selectScenarios(names string) ([]workload.Scenario, []workload.SortScenario, error) {
	if names == "all" || names == "" {
		return workload.Scenarios(), workload.SortScenarios(), nil
	}
	var routes []workload.Scenario
	var sorts []workload.SortScenario
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if sc, ok := workload.ScenarioByName(name); ok {
			routes = append(routes, sc)
			continue
		}
		if sc, ok := workload.SortScenarioByName(name); ok {
			sorts = append(sorts, sc)
			continue
		}
		known := append(workload.ScenarioNames(), workload.SortScenarioNames()...)
		return nil, nil, fmt.Errorf("unknown scenario %q (known: %s)", name, strings.Join(known, ", "))
	}
	return routes, sorts, nil
}

// runScenario measures one scenario on the shared session handle: a warm-up
// pass, iters measured planner runs, and (optionally) the deterministic
// pipeline on the same instance for the word comparison and verification.
func runScenario(cl *cc.Clique, sc workload.Scenario, n int, seed int64, iters int, comparePipeline, verify bool) (experiments.ScenarioBench, error) {
	ri, err := sc.Build(n, seed)
	if err != nil {
		return experiments.ScenarioBench{}, err
	}
	msgs := make([][]cc.Message, n)
	for i, row := range ri.Msgs {
		for _, m := range row {
			msgs[i] = append(msgs[i], cc.Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: int64(m.Payload)})
		}
	}
	ctx := context.Background()
	// One warm-up op primes the engine and protocol buffer pools before the
	// measured window (shared discipline with cliquebench's measureProtocol).
	auto, err := cl.Route(ctx, msgs, cc.WithAlgorithm(cc.AlgorithmAuto))
	if err != nil {
		return experiments.ScenarioBench{}, err
	}
	m, err := experiments.MeasureOp(iters, func() error {
		var opErr error
		auto, opErr = cl.Route(ctx, msgs, cc.WithAlgorithm(cc.AlgorithmAuto))
		return opErr
	})
	if err != nil {
		return experiments.ScenarioBench{}, err
	}

	// Re-derive the plan for its human-readable reason (the public API
	// reports only the chosen strategy) and cross-check the two agree.
	plan := core.PlanRoute(n, ri.Msgs)
	if plan.Strategy.String() != auto.Strategy.String() {
		return experiments.ScenarioBench{}, fmt.Errorf("planner verdict %v disagrees with executed strategy %v", plan.Strategy, auto.Strategy)
	}

	row := experiments.ScenarioBench{
		Scenario:      sc.Name,
		N:             n,
		Strategy:      auto.Strategy.String(),
		Reason:        plan.Reason,
		Rounds:        auto.Stats.Rounds,
		MaxEdgeWords:  auto.Stats.MaxEdgeWords,
		TotalMessages: auto.Stats.TotalMessages,
		TotalWords:    auto.Stats.TotalWords,
		NsPerOp:       m.NsPerOp,
		AllocsPerOp:   m.AllocsPerOp,
	}

	if comparePipeline {
		det, err := cl.Route(ctx, msgs)
		if err != nil {
			return experiments.ScenarioBench{}, err
		}
		row.PipelineTotalWords = det.Stats.TotalWords
		if row.TotalWords > 0 {
			row.WordsVsPipeline = float64(det.Stats.TotalWords) / float64(row.TotalWords)
		}
		// The randomized Valiant-style two-hop baseline on the identical
		// instance: what the planner's deterministic verdict is buying
		// relative to the classic randomized solution.
		rnd, err := cl.Route(ctx, msgs, cc.WithAlgorithm(cc.Randomized), cc.WithSeed(seed))
		if err != nil {
			return experiments.ScenarioBench{}, err
		}
		row.RandomizedTotalWords = rnd.Stats.TotalWords
		row.RandomizedRounds = rnd.Stats.Rounds
		if row.TotalWords > 0 {
			row.WordsVsRandomized = float64(rnd.Stats.TotalWords) / float64(row.TotalWords)
		}
		if verify {
			if err := sameDelivery(auto, det); err != nil {
				return experiments.ScenarioBench{}, fmt.Errorf("planned delivery diverges from the pipeline: %w", err)
			}
			row.Verified = true
		}
	}
	return row, nil
}

// runSortScenario is runScenario for the sorting catalog: a warm-up pass,
// iters measured planner runs, the sorting planner's verdict cross-checked
// against the executed strategy, and (optionally) the deterministic
// Algorithm 4 pipeline on the same instance for the word comparison and
// batch-by-batch verification.
func runSortScenario(cl *cc.Clique, sc workload.SortScenario, n int, seed int64, iters int, comparePipeline, verify bool) (experiments.ScenarioBench, error) {
	si, err := sc.Build(n, seed)
	if err != nil {
		return experiments.ScenarioBench{}, err
	}
	values, err := workload.SortScenarioValues(si)
	if err != nil {
		return experiments.ScenarioBench{}, err
	}
	ctx := context.Background()
	auto, err := cl.Sort(ctx, values, cc.WithAlgorithm(cc.AlgorithmAuto))
	if err != nil {
		return experiments.ScenarioBench{}, err
	}
	m, err := experiments.MeasureOp(iters, func() error {
		var opErr error
		auto, opErr = cl.Sort(ctx, values, cc.WithAlgorithm(cc.AlgorithmAuto))
		return opErr
	})
	if err != nil {
		return experiments.ScenarioBench{}, err
	}

	// Re-derive the plan for its human-readable reason (the public API
	// reports only the chosen strategy) and cross-check the two agree.
	plan := core.PlanSort(n, si.Keys)
	if plan.Strategy.String() != auto.Strategy.String() {
		return experiments.ScenarioBench{}, fmt.Errorf("planner verdict %v disagrees with executed strategy %v", plan.Strategy, auto.Strategy)
	}

	row := experiments.ScenarioBench{
		Scenario:      sc.Name,
		N:             n,
		Strategy:      auto.Strategy.String(),
		Reason:        plan.Reason,
		Rounds:        auto.Stats.Rounds,
		MaxEdgeWords:  auto.Stats.MaxEdgeWords,
		TotalMessages: auto.Stats.TotalMessages,
		TotalWords:    auto.Stats.TotalWords,
		NsPerOp:       m.NsPerOp,
		AllocsPerOp:   m.AllocsPerOp,
	}

	if comparePipeline {
		det, err := cl.Sort(ctx, values)
		if err != nil {
			return experiments.ScenarioBench{}, err
		}
		row.PipelineTotalWords = det.Stats.TotalWords
		if row.TotalWords > 0 {
			row.WordsVsPipeline = float64(det.Stats.TotalWords) / float64(row.TotalWords)
		}
		if verify {
			if err := sameBatches(auto, det); err != nil {
				return experiments.ScenarioBench{}, fmt.Errorf("planned batches diverge from the pipeline: %w", err)
			}
			row.Verified = true
		}
	}
	return row, nil
}

// sameBatches compares two sort results batch by batch.
func sameBatches(a, b *cc.SortResult) error {
	if a.Total != b.Total || len(a.Batches) != len(b.Batches) {
		return fmt.Errorf("total %d over %d batches vs total %d over %d batches",
			a.Total, len(a.Batches), b.Total, len(b.Batches))
	}
	for i := range a.Batches {
		if a.Starts[i] != b.Starts[i] || len(a.Batches[i]) != len(b.Batches[i]) {
			return fmt.Errorf("node %d batch start %d len %d vs start %d len %d",
				i, a.Starts[i], len(a.Batches[i]), b.Starts[i], len(b.Batches[i]))
		}
		for j := range a.Batches[i] {
			if a.Batches[i][j] != b.Batches[i][j] {
				return fmt.Errorf("node %d key %d: %+v vs %+v", i, j, a.Batches[i][j], b.Batches[i][j])
			}
		}
	}
	return nil
}

// sameDelivery compares two route results message by message (both are
// sorted by (Src, Dst, Seq), so equality is positional).
func sameDelivery(a, b *cc.RouteResult) error {
	if len(a.Delivered) != len(b.Delivered) {
		return fmt.Errorf("delivered to %d vs %d nodes", len(a.Delivered), len(b.Delivered))
	}
	for i := range a.Delivered {
		if len(a.Delivered[i]) != len(b.Delivered[i]) {
			return fmt.Errorf("node %d received %d vs %d messages", i, len(a.Delivered[i]), len(b.Delivered[i]))
		}
		for j := range a.Delivered[i] {
			if a.Delivered[i][j] != b.Delivered[i][j] {
				return fmt.Errorf("node %d message %d: %+v vs %+v", i, j, a.Delivered[i][j], b.Delivered[i][j])
			}
		}
	}
	return nil
}

func renderTable(section *experiments.ScenarioSection, markdown bool) string {
	t := tables.New(
		fmt.Sprintf("Scenario catalog, n=%d seed=%d (planner AlgorithmAuto vs deterministic pipeline and randomized baseline)", section.N, section.Seed),
		"scenario", "strategy", "rounds", "max edge words", "messages", "words", "pipeline words", "words x", "rand words", "rand x", "allocs/op", "ms/op",
	)
	for _, e := range section.Entries {
		ratio := "-"
		if e.WordsVsPipeline > 0 {
			ratio = fmt.Sprintf("%.1fx", e.WordsVsPipeline)
		}
		randWords, randRatio := "-", "-"
		if e.RandomizedRounds > 0 {
			randWords = fmt.Sprintf("%d", e.RandomizedTotalWords)
			if e.WordsVsRandomized > 0 {
				randRatio = fmt.Sprintf("%.1fx", e.WordsVsRandomized)
			}
		}
		t.AddRow(e.Scenario, e.Strategy, e.Rounds, e.MaxEdgeWords, e.TotalMessages, e.TotalWords,
			e.PipelineTotalWords, ratio, randWords, randRatio, e.AllocsPerOp, fmt.Sprintf("%.2f", float64(e.NsPerOp)/1e6))
	}
	if markdown {
		return t.Markdown()
	}
	return t.String()
}
