package main

import (
	"context"
	"errors"
	"fmt"
	"strings"

	cc "congestedclique"

	"congestedclique/internal/clique"
	"congestedclique/internal/tables"
	"congestedclique/internal/workload"
)

// chaosRow is one rendered result of the chaos catalog: what was injected,
// how the run ended, how many retries the recovery took, and whether the
// surviving output matched the fault-free golden bit for bit.
type chaosRow struct {
	Scenario     string
	Op           string
	Faults       string
	Outcome      string
	Retries      int64
	BitIdentical string
	Detail       string
}

// runChaos executes the chaos catalog against a fresh session handle and
// renders the chaos table. Every scenario runs twice: once to classify the
// outcome and once to confirm the replay is deterministic (recovered runs
// must match the fault-free golden bit for bit; failed runs must reproduce
// the identical error string). The handle is created here rather than shared
// with the bench catalog so retry counters start at zero.
func runChaos(n int, names string, markdown bool) (string, error) {
	scenarios, err := selectChaosScenarios(names)
	if err != nil {
		return "", err
	}
	cl, err := cc.New(n)
	if err != nil {
		return "", err
	}
	defer cl.Close()

	ctx := context.Background()
	dsts, payloads := workload.ProtocolBenchRoute(n)
	msgs := make([][]cc.Message, n)
	for i := range dsts {
		msgs[i] = make([]cc.Message, len(dsts[i]))
		for j := range dsts[i] {
			msgs[i][j] = cc.Message{Src: i, Dst: dsts[i][j], Seq: j, Payload: payloads[i][j]}
		}
	}
	values := workload.ProtocolBenchSortValues(n)

	goldenRoute, err := cl.Route(ctx, msgs)
	if err != nil {
		return "", fmt.Errorf("fault-free route golden: %w", err)
	}
	goldenSort, err := cl.Sort(ctx, values)
	if err != nil {
		return "", fmt.Errorf("fault-free sort golden: %w", err)
	}

	// Sparse scenarios run on the O(n) scale-out instance through the sparse
	// step executors; their golden is the same fault-free sparse-path run.
	ri, err := workload.ScaleSparseRoute(n, 1)
	if err != nil {
		return "", err
	}
	sparseMsgs := make([][]cc.Message, n)
	for i, row := range ri.Msgs {
		sparseMsgs[i] = make([]cc.Message, len(row))
		for j, m := range row {
			sparseMsgs[i][j] = cc.Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: int64(m.Payload)}
		}
	}
	sparseCl, err := cc.New(n, cc.WithSparsePath())
	if err != nil {
		return "", err
	}
	defer sparseCl.Close()
	goldenSparse, err := sparseCl.Route(ctx, sparseMsgs, cc.WithAlgorithm(cc.AlgorithmAuto))
	if err != nil {
		return "", fmt.Errorf("fault-free sparse route golden: %w", err)
	}

	var rows []chaosRow
	for _, sc := range scenarios {
		if err := workload.ValidateChaosScenario(sc, n); err != nil {
			return "", err
		}
		scMsgs, scGoldenRoute := msgs, goldenRoute
		if sc.Sparse {
			scMsgs, scGoldenRoute = sparseMsgs, goldenSparse
		}
		row, err := runChaosScenario(ctx, cl, sc, n, scMsgs, values, scGoldenRoute, goldenSort)
		if err != nil {
			return "", fmt.Errorf("chaos scenario %s: %w", sc.Name, err)
		}
		rows = append(rows, row)
	}

	t := tables.New(
		fmt.Sprintf("Chaos catalog, n=%d (deterministic fault injection, watchdog, session retry)", n),
		"scenario", "op", "faults", "outcome", "retries", "bit-identical", "detail",
	)
	for _, r := range rows {
		t.AddRow(r.Scenario, r.Op, r.Faults, r.Outcome, r.Retries, r.BitIdentical, r.Detail)
	}
	if markdown {
		return t.Markdown(), nil
	}
	return t.String(), nil
}

// selectChaosScenarios resolves -scenarios against the chaos catalog.
func selectChaosScenarios(names string) ([]workload.ChaosScenario, error) {
	if names == "all" || names == "" {
		return workload.ChaosScenarios(), nil
	}
	var out []workload.ChaosScenario
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		sc, ok := workload.ChaosScenarioByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown chaos scenario %q (known: %v)", name, workload.ChaosScenarioNames())
		}
		out = append(out, sc)
	}
	return out, nil
}

// chaosOptions translates a scenario's abstract schedule into the public
// option set of one call.
func chaosOptions(sc workload.ChaosScenario, n int) ([]cc.Option, error) {
	var opts []cc.Option
	if sc.Retries > 0 {
		opts = append(opts, cc.WithRetry(sc.Retries, sc.Backoff))
	}
	for _, f := range sc.Faults(n) {
		switch f.Kind {
		case clique.FaultPanic:
			opts = append(opts, cc.WithInjectedPanic(f.Node, f.Round))
		case clique.FaultStall:
			opts = append(opts, cc.WithInjectedStall(f.Node, f.Round, f.Stall))
		case clique.FaultCancel:
			opts = append(opts, cc.WithInjectedCancel(f.Round))
		default:
			return nil, fmt.Errorf("unknown fault kind %v", f.Kind)
		}
	}
	return opts, nil
}

// runChaosScenario drives one scenario twice and classifies the outcome
// against its expectation.
func runChaosScenario(ctx context.Context, cl *cc.Clique, sc workload.ChaosScenario, n int, msgs [][]cc.Message, values [][]int64, goldenRoute *cc.RouteResult, goldenSort *cc.SortResult) (chaosRow, error) {
	opts, err := chaosOptions(sc, n)
	if err != nil {
		return chaosRow{}, err
	}
	// The watchdog deadline and sparse path are handle-scoped, so scenarios
	// using either run on their own short-lived handle instead of re-arming
	// the shared one.
	runCl := cl
	if sc.Deadline > 0 || sc.Sparse {
		var handleOpts []cc.Option
		if sc.Deadline > 0 {
			handleOpts = append(handleOpts, cc.WithRoundDeadline(sc.Deadline))
		}
		if sc.Sparse {
			handleOpts = append(handleOpts, cc.WithSparsePath())
		}
		runCl, err = cc.New(n, handleOpts...)
		if err != nil {
			return chaosRow{}, err
		}
		defer runCl.Close()
	}
	if sc.Sparse {
		opts = append(opts, cc.WithAlgorithm(cc.AlgorithmAuto))
	}

	var routeRes *cc.RouteResult
	var sortRes *cc.SortResult
	var runErr error
	runOnce := func() error {
		switch sc.Op {
		case workload.ChaosRoute:
			routeRes, runErr = runCl.Route(ctx, msgs, opts...)
		case workload.ChaosSort:
			sortRes, runErr = runCl.Sort(ctx, values, opts...)
		default:
			return fmt.Errorf("unknown chaos op %q", sc.Op)
		}
		return nil
	}
	if err := runOnce(); err != nil {
		return chaosRow{}, err
	}
	firstErr := runErr
	// Retries of the second (replay) run only, so the cell reads as
	// retries-per-run rather than a total across the determinism check.
	before := runCl.CumulativeStats()
	if err := runOnce(); err != nil {
		return chaosRow{}, err
	}
	after := runCl.CumulativeStats()

	row := chaosRow{
		Scenario:     sc.Name,
		Op:           string(sc.Op),
		Faults:       describeFaults(sc.Faults(n)),
		Retries:      after.Retries - before.Retries,
		BitIdentical: "-",
	}
	if sc.WantRecover {
		if runErr != nil {
			return chaosRow{}, fmt.Errorf("expected recovery, got error: %w", runErr)
		}
		switch sc.Op {
		case workload.ChaosRoute:
			if err := sameDelivery(routeRes, goldenRoute); err != nil {
				return chaosRow{}, fmt.Errorf("recovered delivery diverges from golden: %w", err)
			}
		case workload.ChaosSort:
			if err := sameBatches(sortRes, goldenSort); err != nil {
				return chaosRow{}, fmt.Errorf("recovered batches diverge from golden: %w", err)
			}
		}
		row.Outcome = "recovered"
		row.BitIdentical = "yes"
		row.Detail = "matches fault-free golden"
		return row, nil
	}
	if runErr == nil {
		return chaosRow{}, fmt.Errorf("expected an error wrapping %v, run succeeded", sc.WantError)
	}
	if !errors.Is(runErr, sc.WantError) {
		return chaosRow{}, fmt.Errorf("error %v does not wrap expected sentinel %v", runErr, sc.WantError)
	}
	if firstErr == nil || firstErr.Error() != runErr.Error() {
		return chaosRow{}, fmt.Errorf("error is not deterministic across replays: %q vs %q", firstErr, runErr)
	}
	row.Outcome = "failed (deterministic)"
	row.Detail = runErr.Error()
	return row, nil
}

// describeFaults renders a schedule as a compact cell, e.g.
// "panic@(n3,r2)" or "stall@(n1,r1,30s)".
func describeFaults(faults []clique.Fault) string {
	out := ""
	for i, f := range faults {
		if i > 0 {
			out += " "
		}
		switch f.Kind {
		case clique.FaultStall:
			out += fmt.Sprintf("stall@(n%d,r%d,%v)", f.Node, f.Round, f.Stall)
		case clique.FaultCancel:
			out += fmt.Sprintf("cancel@(r%d)", f.Round)
		default:
			out += fmt.Sprintf("%v@(n%d,r%d)", f.Kind, f.Node, f.Round)
		}
	}
	if out == "" {
		return "-"
	}
	return out
}
