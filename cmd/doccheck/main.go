// Command doccheck enforces the repository's documentation contract in CI:
//
//  1. Markdown link integrity: every relative link target in every tracked
//     *.md file must exist on disk (external http(s)/mailto links and
//     in-page anchors are not followed).
//  2. Doc coverage: every public symbol recorded in API_SURFACE.txt must
//     carry a doc comment in the root package's source. The API surface
//     file is the authority on what is public (cmd/apisurface keeps it in
//     sync with the code), so a symbol added to the surface without
//     documentation fails the build.
//  3. Internal-package doc coverage: every exported symbol (and exported
//     method on an exported receiver) of the packages listed in -internal
//     must carry a doc comment. Internal packages have no surface file, so
//     the source itself is the authority: exporting a symbol there is a
//     promise to the rest of the repository and must be documented.
//
// Usage:
//
//	doccheck [-dir .] [-surface API_SURFACE.txt] [-internal internal/core,...]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	log.SetFlags(0)
	var (
		dir      = flag.String("dir", ".", "repository root")
		surface  = flag.String("surface", "API_SURFACE.txt", "API surface file (relative to -dir)")
		internal = flag.String("internal", "internal/core,internal/clique,internal/workload",
			"comma-separated internal package dirs (relative to -dir) whose exported symbols must all be documented; empty disables the check")
	)
	flag.Parse()

	var problems []string
	linkProblems, err := checkMarkdownLinks(*dir)
	if err != nil {
		log.Fatal(err)
	}
	problems = append(problems, linkProblems...)

	docProblems, err := checkDocCoverage(*dir, filepath.Join(*dir, *surface))
	if err != nil {
		log.Fatal(err)
	}
	problems = append(problems, docProblems...)

	for _, pkg := range strings.Split(*internal, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		internalProblems, err := checkInternalDocCoverage(*dir, pkg)
		if err != nil {
			log.Fatal(err)
		}
		problems = append(problems, internalProblems...)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			log.Print(p)
		}
		log.Fatalf("doccheck: %d problem(s)", len(problems))
	}
	fmt.Println("doccheck: markdown links, public-symbol and internal-package doc coverage OK")
}

// linkPattern matches markdown link and image targets: [text](target) and
// ![alt](target).
var linkPattern = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks walks the tree for *.md files and verifies every
// relative link target exists.
func checkMarkdownLinks(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkPattern.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an in-page anchor from a file target.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, statErr := os.Stat(resolved); statErr != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q (resolved %s)", path, m[1], resolved))
			}
		}
		return nil
	})
	return problems, err
}

// surfaceSymbol extracts the symbol a surface line describes: "Name" for
// funcs/types/vars/consts, "Recv.Name" for methods.
func surfaceSymbol(line string) (string, bool) {
	line = strings.TrimSpace(line)
	if line == "" {
		return "", false
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", false
	}
	switch fields[0] {
	case "func":
		rest := strings.TrimSpace(strings.TrimPrefix(line, "func"))
		if strings.HasPrefix(rest, "(") {
			// Method: func (c *Clique) Close() error — the receiver type is
			// the last whitespace-separated token inside the parens (the
			// variable name, if any, precedes it).
			end := strings.IndexByte(rest, ')')
			if end < 0 {
				return "", false
			}
			recvFields := strings.Fields(rest[1:end])
			if len(recvFields) == 0 {
				return "", false
			}
			recv := strings.TrimPrefix(recvFields[len(recvFields)-1], "*")
			rest = strings.TrimSpace(rest[end+1:])
			name := rest
			if i := strings.IndexByte(name, '('); i >= 0 {
				name = name[:i]
			}
			return recv + "." + strings.TrimSpace(name), true
		}
		name := rest
		if i := strings.IndexByte(name, '('); i >= 0 {
			name = name[:i]
		}
		return strings.TrimSpace(name), true
	case "type", "var", "const":
		return fields[1], true
	default:
		return "", false
	}
}

// checkDocCoverage parses the root package and verifies every symbol listed
// in the surface file has a doc comment.
func checkDocCoverage(dir, surfacePath string) ([]string, error) {
	documented, err := documentedSymbols(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(surfacePath)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, line := range strings.Split(string(data), "\n") {
		sym, ok := surfaceSymbol(line)
		if !ok {
			continue
		}
		state, known := documented[sym]
		if !known {
			problems = append(problems, fmt.Sprintf("%s: symbol %q not found in package source (stale surface file?)", surfacePath, sym))
			continue
		}
		if !state {
			problems = append(problems, fmt.Sprintf("public symbol %q has no doc comment (listed in %s)", sym, surfacePath))
		}
	}
	return problems, nil
}

// checkInternalDocCoverage parses one internal package and reports every
// exported symbol that lacks a doc comment. Unlike the root package there is
// no surface file to drive the check: the parsed source is the authority.
func checkInternalDocCoverage(root, pkg string) ([]string, error) {
	documented, err := documentedSymbols(filepath.Join(root, filepath.FromSlash(pkg)))
	if err != nil {
		return nil, err
	}
	undocumented := make([]string, 0, len(documented))
	for sym, ok := range documented {
		if !ok {
			undocumented = append(undocumented, sym)
		}
	}
	sort.Strings(undocumented)
	problems := make([]string, len(undocumented))
	for i, sym := range undocumented {
		problems[i] = fmt.Sprintf("exported symbol %q of %s has no doc comment", sym, pkg)
	}
	return problems, nil
}

// documentedSymbols maps every exported top-level symbol (and exported
// method on an exported receiver) of the package in dir to whether it
// carries a doc comment. A symbol declared in a group counts as documented
// if either the group or its own spec is documented.
func documentedSymbols(dir string) (map[string]bool, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool)
	record := func(name string, documented bool) {
		if !ast.IsExported(name) {
			return
		}
		// A symbol declared in multiple build contexts keeps "documented" if
		// any declaration documents it.
		out[name] = out[name] || documented
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					name := d.Name.Name
					if d.Recv != nil && len(d.Recv.List) == 1 {
						recv := receiverTypeName(d.Recv.List[0].Type)
						if recv == "" || !ast.IsExported(recv) {
							continue
						}
						name = recv + "." + d.Name.Name
						if !ast.IsExported(d.Name.Name) {
							continue
						}
						out[name] = out[name] || d.Doc.Text() != ""
						continue
					}
					record(name, d.Doc.Text() != "")
				case *ast.GenDecl:
					groupDoc := d.Doc.Text() != ""
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							record(s.Name.Name, groupDoc || s.Doc.Text() != "" || s.Comment.Text() != "")
						case *ast.ValueSpec:
							specDoc := s.Doc.Text() != "" || s.Comment.Text() != ""
							for _, id := range s.Names {
								// In a grouped const/var block every spec needs
								// its own comment; the group comment alone only
								// covers a single-spec declaration.
								record(id.Name, specDoc || (groupDoc && len(d.Specs) == 1))
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// receiverTypeName unwraps *T, T and generic receivers to the type name.
func receiverTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.IndexExpr:
		return receiverTypeName(t.X)
	case *ast.IndexListExpr:
		return receiverTypeName(t.X)
	default:
		return ""
	}
}
