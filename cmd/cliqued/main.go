// Command cliqued is the congested-clique network daemon: it serves Route,
// Sort, SortKeys and the corollary operations over the service wire protocol
// (see docs/SERVICE.md), fronting one pooled session handle with bounded
// admission, optional Route batching, per-request deadlines, transient-retry
// and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	cliqued -addr :9024 -n 64 -concurrency 4 -queue 16
//	cliqued -addr 127.0.0.1:0 -n 64 -batch 4 -batch-wait 200us
//
// On SIGTERM or SIGINT the daemon stops accepting, finishes every admitted
// request, then exits; a second signal — or -drain-timeout expiring — forces
// the remaining work to abort.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	cc "congestedclique"

	"congestedclique/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:9024", "listen address (host:port; port 0 picks a free port)")
		n             = flag.Int("n", 64, "clique size every served instance must match")
		concurrency   = flag.Int("concurrency", 2, "engine pool size (simultaneous runs and worker count)")
		queue         = flag.Int("queue", 0, "admission queue depth; arrivals beyond it are shed (0 = 4x concurrency)")
		batch         = flag.Int("batch", 1, "max compatible Route requests merged into one engine run (1 disables)")
		batchWait     = flag.Duration("batch-wait", 0, "how long a worker waits for batch companions (0 = opportunistic)")
		deadline      = flag.Duration("deadline", 0, "default per-request deadline for requests that carry none (0 = unlimited)")
		retries       = flag.Int("retries", 0, "default transient-failure retry budget per request")
		retryBackoff  = flag.Duration("retry-backoff", 0, "base backoff between retry attempts")
		roundDeadline = flag.Duration("round-deadline", 0, "per-round watchdog on the engine (0 = off)")
		alg           = flag.String("alg", "", "force an algorithm: deterministic | low-compute | randomized | naive-direct | auto (empty = session default)")
		allowFaults   = flag.Bool("allow-fault-injection", false, "let requests inject deterministic cancellations (chaos/load testing only)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long a drain may run before in-flight work is aborted")
		planCache     = flag.Int("plan-cache", 0, "cross-run plan cache capacity for AlgorithmAuto requests (0 = off; implies the charged census)")
		census        = flag.Bool("census", false, "charge the planner census on the wire for AlgorithmAuto requests (implied by -plan-cache)")
	)
	flag.Parse()

	cfg := service.Config{
		N:                   *n,
		MaxConcurrency:      *concurrency,
		QueueDepth:          *queue,
		BatchMaxOps:         *batch,
		BatchWait:           *batchWait,
		DefaultDeadline:     *deadline,
		Retries:             *retries,
		RetryBackoff:        *retryBackoff,
		RoundDeadline:       *roundDeadline,
		AllowFaultInjection: *allowFaults,
		PlanCacheCapacity:   *planCache,
		ChargedCensus:       *census,
	}
	if *alg != "" {
		a, err := parseAlgorithm(*alg)
		if err != nil {
			log.Fatalf("cliqued: %v", err)
		}
		cfg.Algorithm = a
	}

	srv, err := service.NewServer(cfg)
	if err != nil {
		log.Fatalf("cliqued: %v", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("cliqued: %v", err)
	}
	st := srv.Stats()
	cacheNote := ""
	if *planCache > 0 {
		cacheNote = fmt.Sprintf(" plan-cache=%d", *planCache)
	} else if *census {
		cacheNote = " census=on"
	}
	log.Printf("cliqued: serving n=%d concurrency=%d queue=%d batch=%d%s on %s",
		st.N, st.MaxConcurrency, st.QueueDepth, st.BatchMaxOps, cacheNote, ln.Addr())

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigCh:
		log.Printf("cliqued: %v, draining (timeout %v; signal again to force)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		go func() {
			<-sigCh
			log.Printf("cliqued: second signal, forcing shutdown")
			cancel()
		}()
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Fatalf("cliqued: drain incomplete: %v", err)
		}
		st := srv.Stats()
		log.Printf("cliqued: drained cleanly: ops=%d failed=%d retries=%d shed=%d drain-rejected=%d batched-runs=%d cache-hits=%d cache-misses=%d",
			st.Operations, st.FailedOperations, st.Retries, st.SheddedOps, st.DrainRejected, st.BatchedRuns, st.PlanCacheHits, st.PlanCacheMisses)
	case err := <-serveErr:
		if err != nil {
			log.Fatalf("cliqued: serve: %v", err)
		}
	}
}

func parseAlgorithm(name string) (cc.Algorithm, error) {
	switch name {
	case "deterministic":
		return cc.Deterministic, nil
	case "low-compute":
		return cc.LowCompute, nil
	case "randomized":
		return cc.Randomized, nil
	case "naive-direct":
		return cc.NaiveDirect, nil
	case "auto":
		return cc.AlgorithmAuto, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}
