package main

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	cc "congestedclique"

	"congestedclique/internal/experiments"
	"congestedclique/internal/loadgen"
	"congestedclique/internal/workload"
)

// Pre-refactor reference numbers for the flat-frame protocol layer, measured
// on the per-parcel implementation (PR 1 engine + string-keyed protocol
// layer) with `go test -bench -benchmem` on the CI reference machine. They
// are embedded so every regenerated BENCH_protocol.json carries the
// before/after comparison that motivated the frame layer.
var protocolBaseline = []experiments.ProtocolBench{
	{Name: "BenchmarkRoute/n=64", N: 64, NsPerOp: 20770276, AllocsPerOp: 151883, BytesPerOp: 17739576},
	{Name: "BenchmarkRoute/n=256", N: 256, NsPerOp: 367117909, AllocsPerOp: 1988717, BytesPerOp: 293504144},
	{Name: "BenchmarkRoute/n=1024", N: 1024, NsPerOp: 7037644654, AllocsPerOp: 28560944, BytesPerOp: 5281926424},
	{Name: "BenchmarkSort/n=64", N: 64, NsPerOp: 64200003, AllocsPerOp: 326622, BytesPerOp: 35341052},
	{Name: "BenchmarkSort/n=256", N: 256, NsPerOp: 850540255, AllocsPerOp: 4273698, BytesPerOp: 569370288},
	{Name: "BenchmarkSort/n=1024", N: 1024, NsPerOp: 15590759332, AllocsPerOp: 61979523, BytesPerOp: 10170009872},
}

// protocolRouteWorkload builds the shared deterministic full-load routing
// instance (workload.ProtocolBenchRoute) — the same workload BenchmarkRoute
// and the stats-invariant goldens measure.
func protocolRouteWorkload(n int) [][]cc.Message {
	msgs, err := cc.NewUniformMessages(workload.ProtocolBenchRoute(n))
	if err != nil {
		panic(err)
	}
	return msgs
}

func protocolSortWorkload(n int) [][]int64 {
	return workload.ProtocolBenchSortValues(n)
}

// measureProtocol runs op iters times (after one warm-up that primes the
// engine and protocol buffer pools, matching the steady state a long-running
// service sees) and reports per-op figures via the shared measurement
// helper.
func measureProtocol(name string, n, iters int, op func() (cc.Stats, error)) (experiments.ProtocolBench, error) {
	stats, err := op()
	if err != nil {
		return experiments.ProtocolBench{}, err
	}
	m, err := experiments.MeasureOp(iters, func() error {
		_, opErr := op()
		return opErr
	})
	if err != nil {
		return experiments.ProtocolBench{}, err
	}
	return experiments.ProtocolBench{
		Name:        name,
		N:           n,
		Iterations:  iters,
		NsPerOp:     m.NsPerOp,
		AllocsPerOp: m.AllocsPerOp,
		BytesPerOp:  m.BytesPerOp,
		Rounds:      stats.Rounds,
		MaxEdgeW:    stats.MaxEdgeWords,
	}, nil
}

// runProtocolBench measures the end-to-end Route and Sort pipelines at every
// size up to maxN — once through fresh one-shot handles and once amortized
// over a reused session handle — and writes BENCH_protocol.json.
func runProtocolBench(path string, maxN int) error {
	sizes := []int{64, 256, 1024}
	ctx := context.Background()
	var measured, reuse []experiments.ProtocolBench
	for _, n := range sizes {
		if n > maxN {
			continue
		}
		iters := 3
		if n >= 1024 {
			iters = 1
		}
		msgs := protocolRouteWorkload(n)
		rb, err := measureProtocol(fmt.Sprintf("BenchmarkRoute/n=%d", n), n, iters, func() (cc.Stats, error) {
			res, err := cc.Route(n, msgs)
			if err != nil {
				return cc.Stats{}, err
			}
			return res.Stats, nil
		})
		if err != nil {
			return fmt.Errorf("route n=%d: %w", n, err)
		}
		measured = append(measured, rb)

		values := protocolSortWorkload(n)
		sb, err := measureProtocol(fmt.Sprintf("BenchmarkSort/n=%d", n), n, iters, func() (cc.Stats, error) {
			res, err := cc.Sort(n, values)
			if err != nil {
				return cc.Stats{}, err
			}
			return res.Stats, nil
		})
		if err != nil {
			return fmt.Errorf("sort n=%d: %w", n, err)
		}
		measured = append(measured, sb)

		// Session path: the same workloads on one long-lived handle.
		cl, err := cc.New(n)
		if err != nil {
			return fmt.Errorf("session n=%d: %w", n, err)
		}
		rr, err := measureProtocol(fmt.Sprintf("BenchmarkRouteReuse/n=%d", n), n, iters, func() (cc.Stats, error) {
			res, err := cl.Route(ctx, msgs)
			if err != nil {
				return cc.Stats{}, err
			}
			return res.Stats, nil
		})
		if err != nil {
			return fmt.Errorf("route reuse n=%d: %w", n, err)
		}
		reuse = append(reuse, rr)
		sr, err := measureProtocol(fmt.Sprintf("BenchmarkSortReuse/n=%d", n), n, iters, func() (cc.Stats, error) {
			res, err := cl.Sort(ctx, values)
			if err != nil {
				return cc.Stats{}, err
			}
			return res.Stats, nil
		})
		if err != nil {
			return fmt.Errorf("sort reuse n=%d: %w", n, err)
		}
		reuse = append(reuse, sr)
		if err := cl.Close(); err != nil {
			return fmt.Errorf("close session n=%d: %w", n, err)
		}
	}

	baseByName := make(map[string]experiments.ProtocolBench, len(protocolBaseline))
	for _, b := range protocolBaseline {
		baseByName[b.Name] = b
	}
	for i := range measured {
		if base, ok := baseByName[measured[i].Name]; ok {
			if measured[i].NsPerOp > 0 {
				measured[i].SpeedupVs = float64(base.NsPerOp) / float64(measured[i].NsPerOp)
			}
			if measured[i].AllocsPerOp > 0 {
				measured[i].AllocRatio = float64(base.AllocsPerOp) / float64(measured[i].AllocsPerOp)
			}
		}
	}

	// Each session-reuse entry is compared against its fresh-handle twin:
	// SpeedupVs/AllocRatio here mean "vs the fresh-network path of the same
	// build", the amortization the session API exists to deliver.
	freshByN := make(map[string]experiments.ProtocolBench, len(measured))
	for _, b := range measured {
		freshByN[b.Name] = b
	}
	for i := range reuse {
		freshName := strings.Replace(reuse[i].Name, "Reuse", "", 1)
		if base, ok := freshByN[freshName]; ok {
			if reuse[i].NsPerOp > 0 {
				reuse[i].SpeedupVs = float64(base.NsPerOp) / float64(reuse[i].NsPerOp)
			}
			if reuse[i].AllocsPerOp > 0 {
				reuse[i].AllocRatio = float64(base.AllocsPerOp) / float64(reuse[i].AllocsPerOp)
			}
		}
	}

	conc, err := runConcurrencySweep(ctx, maxN)
	if err != nil {
		return fmt.Errorf("concurrency sweep: %w", err)
	}

	prev, err := experiments.ReadProtocolDoc(path)
	if err != nil {
		return err
	}
	doc := experiments.ProtocolDoc{
		Tool:         "cliquebench -protocol-json",
		Schema:       "congestedclique/bench-protocol/v1",
		MaxN:         maxN,
		Measured:     measured,
		SessionReuse: reuse,
		Concurrency:  conc,
		// The scenarios, service, temporal and scaling sections are owned by
		// other writers (cmd/cliquescen, cmd/cliqued, -scaling-json);
		// regenerating the protocol sections must not destroy them.
		Scenarios:           prev.Scenarios,
		Service:             prev.Service,
		Temporal:            prev.Temporal,
		Scaling:             prev.Scaling,
		PreRefactorBaseline: protocolBaseline,
	}
	return experiments.WriteProtocolDoc(path, doc)
}

// runConcurrencySweep measures aggregate pooled-handle throughput at
// k ∈ {1, 2, 4, 8} — Route at the largest measured size (n=256 when maxN
// allows) and Sort at n=64 to bound CI time — via the shared
// internal/loadgen harness with verification on. Results are recorded as
// measured: on a machine with fewer cores than k the sweep shows the memory
// and scheduler bound honestly instead of an assumed linear speedup.
func runConcurrencySweep(ctx context.Context, maxN int) (*experiments.ConcurrencySection, error) {
	routeN := 256
	if maxN < routeN {
		routeN = maxN
	}
	sortN := 64
	if maxN < sortN {
		sortN = maxN
	}
	section := &experiments.ConcurrencySection{
		Cores:      runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Note: "aggregate throughput of k concurrent streams on ONE pooled handle (WithMaxConcurrency(k), " +
			"internal/loadgen, same harness as cmd/cliqueload); results are verified bit-identical to serial execution " +
			"in a separate pass, so the timed window carries no comparison overhead; in-process engines already run one " +
			"goroutine per node, so speedup_vs_k1 is bounded by cores — read it against the recorded cores/gomaxprocs",
	}
	for _, sweep := range []struct {
		n        string
		size     int
		workload string
		out      *[]experiments.ConcurrencyBench
	}{
		{"RouteParallel", routeN, "route", &section.Route},
		{"SortParallel", sortN, "sort", &section.Sort},
	} {
		var serial float64
		for _, k := range []int{1, 2, 4, 8} {
			// Enough operations per point that the recorded speedup is not
			// dominated by cold-start or scheduler jitter; the verification
			// pass that precedes the timed window doubles as warm-up.
			ops := 8
			if sweep.size >= 256 {
				ops = 4
			}
			res, err := loadgen.Run(ctx, loadgen.Config{
				N:            sweep.size,
				Concurrency:  k,
				Streams:      k,
				OpsPerStream: ops,
				Workload:     sweep.workload,
				Verify:       true,
			})
			if err != nil {
				return nil, fmt.Errorf("%s k=%d: %w", sweep.workload, k, err)
			}
			// loadgen tolerates operation errors (it records them per stream);
			// a committed benchmark number must not — every op has to succeed.
			if res.FailedOps > 0 {
				return nil, fmt.Errorf("%s k=%d: %d of %d operations failed: %s",
					sweep.workload, k, res.FailedOps, res.TotalOps, res.FirstError)
			}
			b := experiments.ConcurrencyBench{
				Name:        fmt.Sprintf("%s/n=%d/k=%d", sweep.n, sweep.size, k),
				N:           sweep.size,
				K:           k,
				Streams:     k,
				TotalOps:    res.TotalOps,
				OpsPerSec:   res.OpsPerSec,
				P50Ms:       float64(res.P50.Nanoseconds()) / 1e6,
				P99Ms:       float64(res.P99.Nanoseconds()) / 1e6,
				VerifiedOps: res.Verified,
			}
			if k == 1 {
				serial = res.OpsPerSec
			}
			if serial > 0 {
				b.SpeedupVsK1 = res.OpsPerSec / serial
			}
			*sweep.out = append(*sweep.out, b)
		}
	}
	return section, nil
}
