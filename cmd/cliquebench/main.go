// Command cliquebench regenerates every experiment table recorded in
// EXPERIMENTS.md (E1-E8): for each claim of the paper it runs the verified
// protocol on the simulated congested clique and prints the measured rounds,
// per-edge bandwidth and (where applicable) local computation next to the
// paper's claimed bound.
//
// The default sizes finish in well under a minute; -max-n raises the largest
// clique size, -markdown switches the output to markdown tables, and
// -json FILE additionally writes every table to FILE as a JSON document (the
// format CI uploads as its benchmark artifact).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"congestedclique/internal/experiments"
	"congestedclique/internal/tables"
	"congestedclique/internal/workload"
)

var (
	markdown  bool
	collected []*tables.Table
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func emit(t *tables.Table) {
	collected = append(collected, t)
	if markdown {
		fmt.Println(t.Markdown())
		return
	}
	fmt.Println(t.String())
}

func run() error {
	var (
		maxN         = flag.Int("max-n", 256, "largest clique size to measure")
		seed         = flag.Int64("seed", 1, "workload seed")
		jsonPath     = flag.String("json", "", "also write all tables to this file as JSON")
		protocolJSON = flag.String("protocol-json", "", "run the end-to-end Route/Sort protocol benchmarks and write them to this file (skips the experiment tables)")
		protocolMaxN = flag.Int("protocol-max-n", 1024, "largest clique size for -protocol-json")
		scalingJSON  = flag.String("scaling-json", "", "run the sparse scale-out frontier curve and merge its scaling section into this file (skips the experiment tables)")
		scalingMaxN  = flag.Int("scaling-max-n", 16384, "largest clique size for -scaling-json")
	)
	flag.BoolVar(&markdown, "markdown", false, "emit markdown tables")
	flag.Parse()

	if *protocolJSON != "" {
		return runProtocolBench(*protocolJSON, *protocolMaxN)
	}
	if *scalingJSON != "" {
		return runScalingBench(*scalingJSON, *scalingMaxN)
	}

	sizes := []int{16, 25, 49, 64, 100, 144, 196, 256, 324, 400, 529, 625, 784, 1024}
	nonSquares := []int{12, 20, 40, 90, 150, 200, 300, 500}
	var squares, others []int
	for _, n := range sizes {
		if n <= *maxN {
			squares = append(squares, n)
		}
	}
	for _, n := range nonSquares {
		if n <= *maxN {
			others = append(others, n)
		}
	}

	if err := e1Routing(squares, others, *seed); err != nil {
		return fmt.Errorf("E1: %w", err)
	}
	if err := e2Sorting(squares, others, *seed); err != nil {
		return fmt.Errorf("E2: %w", err)
	}
	if err := e3LowCompute(squares, *seed); err != nil {
		return fmt.Errorf("E3: %w", err)
	}
	if err := e4RankSelectMode(squares, *seed); err != nil {
		return fmt.Errorf("E4: %w", err)
	}
	if err := e5Comparison(squares, *seed); err != nil {
		return fmt.Errorf("E5: %w", err)
	}
	if err := e6SmallKeys(squares, *seed); err != nil {
		return fmt.Errorf("E6: %w", err)
	}
	if err := e7Bandwidth(squares, *seed); err != nil {
		return fmt.Errorf("E7: %w", err)
	}
	if err := e8Coloring(*seed); err != nil {
		return fmt.Errorf("E8: %w", err)
	}
	if *jsonPath != "" {
		doc := &tables.Document{
			Tool: "cliquebench",
			Args: map[string]string{
				"max-n": fmt.Sprint(*maxN),
				"seed":  fmt.Sprint(*seed),
			},
			Tables: collected,
		}
		data, err := doc.JSON()
		if err != nil {
			return fmt.Errorf("render json: %w", err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *jsonPath, err)
		}
	}
	return nil
}

func pick(ns []int, count int) []int {
	if len(ns) <= count {
		return ns
	}
	out := make([]int, 0, count)
	step := float64(len(ns)-1) / float64(count-1)
	for i := 0; i < count; i++ {
		out = append(out, ns[int(float64(i)*step+0.5)])
	}
	return out
}

func e1Routing(squares, others []int, seed int64) error {
	t := tables.New("E1 — Theorem 3.7: deterministic routing (claim: <= 16 rounds, O(log n) bits per edge per round)",
		"n", "workload", "rounds", "claim", "max words/edge/round", "max packets/edge/round")
	patterns := []workload.RoutingPattern{workload.RoutingUniform, workload.RoutingSkewed, workload.RoutingSetAdversarial}
	for _, n := range squares {
		for _, p := range patterns {
			m, err := experiments.MeasureRouting(n, n, p, "deterministic", seed)
			if err != nil {
				return err
			}
			t.AddRow(n, string(p), m.Rounds, "<= 16", m.MaxEdgeWords, m.MaxEdgeMessages)
		}
	}
	for _, n := range pick(others, 4) {
		m, err := experiments.MeasureRouting(n, n, workload.RoutingUniform, "deterministic", seed)
		if err != nil {
			return err
		}
		t.AddRow(n, "uniform (non-square n)", m.Rounds, "<= 16", m.MaxEdgeWords, m.MaxEdgeMessages)
	}
	emit(t)
	return nil
}

func e2Sorting(squares, others []int, seed int64) error {
	t := tables.New("E2 — Theorem 4.5: deterministic sorting (claim: <= 37 rounds)",
		"n", "keys", "distribution", "rounds", "claim", "max words/edge/round")
	dists := []workload.KeyDistribution{workload.KeysUniform, workload.KeysDuplicateHeavy, workload.KeysPreSorted}
	for _, n := range squares {
		for _, d := range dists {
			m, err := experiments.MeasureSorting(n, n, d, "deterministic", seed)
			if err != nil {
				return err
			}
			t.AddRow(n, n*n, string(d), m.Rounds, "<= 37", m.MaxEdgeWords)
		}
	}
	for _, n := range pick(others, 3) {
		m, err := experiments.MeasureSorting(n, n, workload.KeysUniform, "deterministic", seed)
		if err != nil {
			return err
		}
		t.AddRow(n, n*n, "uniform (non-square n)", m.Rounds, "<= 37", m.MaxEdgeWords)
	}
	emit(t)
	return nil
}

func e3LowCompute(squares []int, seed int64) error {
	t := tables.New("E3 — Theorem 5.4: low-computation routing (claim: <= 12 rounds, O(n log n) steps and memory per node)",
		"n", "rounds", "claim", "steps/node", "steps/(n)", "memory words/node", "max words/edge/round")
	for _, n := range squares {
		m, err := experiments.MeasureRouting(n, n, workload.RoutingUniform, "low-compute", seed)
		if err != nil {
			return err
		}
		ratio := "-"
		if n > 0 && m.StepsPerNode > 0 {
			ratio = fmt.Sprintf("%.1f", float64(m.StepsPerNode)/float64(n))
		}
		t.AddRow(n, m.Rounds, "<= 12", m.StepsPerNode, ratio, m.MemoryPerNode, m.MaxEdgeWords)
	}
	emit(t)
	return nil
}

func e4RankSelectMode(squares []int, seed int64) error {
	t := tables.New("E4 — Corollary 4.6: rank-in-union, selection and mode (claim: O(1) rounds)",
		"n", "operation", "distribution", "rounds", "claim")
	ns := pick(squares, 4)
	for _, n := range ns {
		for _, d := range []workload.KeyDistribution{workload.KeysDuplicateHeavy, workload.KeysUniform} {
			m, err := experiments.MeasureRank(n, n, d, seed)
			if err != nil {
				return err
			}
			t.AddRow(n, "rank-in-union", string(d), m.Rounds, "O(1) (37+1+16)")
		}
		sel, err := experiments.MeasureSelect(n, n, workload.KeysUniform, seed)
		if err != nil {
			return err
		}
		t.AddRow(n, "selection (median)", "uniform", sel.Rounds, "O(1) (37+1)")
		mod, err := experiments.MeasureMode(n, n, workload.KeysDuplicateHeavy, seed)
		if err != nil {
			return err
		}
		t.AddRow(n, "mode", "duplicate-heavy", mod.Rounds, "O(1) (37+1)")
	}
	emit(t)
	return nil
}

func e5Comparison(squares []int, seed int64) error {
	t := tables.New("E5 — deterministic vs randomized vs naive (introduction: randomized prior work is ~2x faster; naive direct delivery degenerates)",
		"n", "workload", "algorithm", "rounds", "max words/edge/round")
	ns := pick(squares, 3)
	for _, n := range ns {
		for _, p := range []workload.RoutingPattern{workload.RoutingUniform, workload.RoutingSkewed} {
			for _, alg := range []string{"deterministic", "low-compute", "randomized", "naive-direct"} {
				m, err := experiments.MeasureRouting(n, n, p, alg, seed)
				if err != nil {
					return err
				}
				t.AddRow(n, string(p), alg, m.Rounds, m.MaxEdgeWords)
			}
		}
	}
	emit(t)

	ts := tables.New("E5b — deterministic vs randomized sorting",
		"n", "keys", "algorithm", "rounds")
	for _, n := range ns {
		for _, alg := range []string{"deterministic", "randomized"} {
			m, err := experiments.MeasureSorting(n, n, workload.KeysUniform, alg, seed)
			if err != nil {
				return err
			}
			ts.AddRow(n, n*n, alg, m.Rounds)
		}
	}
	emit(ts)
	return nil
}

func e6SmallKeys(squares []int, seed int64) error {
	t := tables.New("E6 — Section 6.3: counting keys of o(log n) bits (claim: 2 rounds, 1-2 bit messages)",
		"n", "domain K", "keys", "rounds", "claim", "max words/edge/round")
	for _, n := range squares {
		if n < 64 {
			continue
		}
		bits := 1
		for (1 << bits) <= n {
			bits++
		}
		domain := n / (bits * bits)
		if domain < 1 {
			continue
		}
		if domain > 8 {
			domain = 8
		}
		m, err := experiments.MeasureSmallKeys(n, n, domain, seed)
		if err != nil {
			return err
		}
		t.AddRow(n, domain, n*n, m.Rounds, "2", m.MaxEdgeWords)
	}
	emit(t)
	return nil
}

func e7Bandwidth(squares []int, seed int64) error {
	t := tables.New("E7 — model compliance: maximum per-edge load per round stays a constant number of O(log n)-bit words for every algorithm",
		"algorithm", "n", "rounds", "max words/edge/round", "max packets/edge/round")
	ns := pick(squares, 3)
	for _, n := range ns {
		for _, alg := range []string{"deterministic", "low-compute"} {
			m, err := experiments.MeasureRouting(n, n, workload.RoutingSetAdversarial, alg, seed)
			if err != nil {
				return err
			}
			t.AddRow("routing/"+alg, n, m.Rounds, m.MaxEdgeWords, m.MaxEdgeMessages)
		}
		m, err := experiments.MeasureSorting(n, n, workload.KeysDuplicateHeavy, "deterministic", seed)
		if err != nil {
			return err
		}
		t.AddRow("sorting/deterministic", n, m.Rounds, m.MaxEdgeWords, m.MaxEdgeMessages)
	}
	emit(t)
	return nil
}

func e8Coloring(seed int64) error {
	t := tables.New("E8 — ablation (footnote 3 / Section 5): exact König coloring vs greedy 2Δ-1 coloring of the routing schedules",
		"matrix", "degree", "method", "colors", "time")
	cases := []struct{ size, degree int }{{16, 256}, {32, 1024}, {32, 4096}}
	for _, c := range cases {
		for _, method := range []string{"exact", "greedy", "exact-expanded"} {
			m, err := experiments.MeasureColoring(c.size, c.degree, method, seed)
			if err != nil {
				return err
			}
			t.AddRow(fmt.Sprintf("%dx%d", c.size, c.size), c.degree, method, m.Colors, m.Duration.Round(1000).String())
		}
	}
	emit(t)

	t2 := tables.New("E8b — end-to-end effect: 16-round exact-coloring router vs 12-round Section 5 router",
		"n", "algorithm", "rounds", "max words/edge/round")
	for _, n := range []int{64, 256} {
		for _, alg := range []string{"deterministic", "low-compute"} {
			m, err := experiments.MeasureRouting(n, n, workload.RoutingUniform, alg, seed)
			if err != nil {
				return err
			}
			t2.AddRow(n, alg, m.Rounds, m.MaxEdgeWords)
		}
	}
	emit(t2)
	return nil
}
