package main

// The scale-out frontier curve (cliquebench -scaling-json): full Route and
// Sort protocol runs on the sparse demand path at n up to 16384, recording
// wall time, allocation figures, process peak RSS and the model cost (rounds,
// total words) per point. At every size where the dense scheduler is still
// affordable the sparse output is cross-checked element by element against
// it, so the curve doubles as a correctness pin. Results merge into the
// scaling section of BENCH_protocol.json by (op, n), preserving every other
// section of the document.

import (
	"fmt"
	"reflect"

	cc "congestedclique"

	"congestedclique/internal/experiments"
	"congestedclique/internal/workload"
)

// scalingSizes is the frontier's n axis; points above -scaling-max-n are
// skipped. Sizes run ascending so the recorded VmHWM reads as "peak RSS
// after completing size n".
var scalingSizes = []int{256, 1024, 4096, 16384}

// denseCrossCheckMaxN bounds the sizes where the dense scheduler (O(n²)
// demand matrix) is run alongside the sparse path for verification.
const denseCrossCheckMaxN = 1024

// scalingMessages converts a workload routing instance to the public message
// type.
func scalingMessages(ri *workload.RoutingInstance) [][]cc.Message {
	msgs := make([][]cc.Message, ri.N)
	for i, row := range ri.Msgs {
		msgs[i] = make([]cc.Message, len(row))
		for j, m := range row {
			msgs[i][j] = cc.Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: int64(m.Payload)}
		}
	}
	return msgs
}

// scalingOp is one measured operation of the curve: a routing demand or a
// sorting input at one size.
type scalingOp struct {
	op     string
	route  [][]cc.Message
	values [][]int64
}

// scalingOps builds the three frontier workloads at size n: the ~2n-message
// direct-strategy route, the one-to-many broadcast-strategy route and the
// presorted-strategy sort (workload.Scale* builders).
func scalingOps(n int) ([]scalingOp, error) {
	ri, err := workload.ScaleSparseRoute(n, 1)
	if err != nil {
		return nil, err
	}
	bi, err := workload.ScaleBroadcastRoute(n)
	if err != nil {
		return nil, err
	}
	return []scalingOp{
		{op: "route-sparse", route: scalingMessages(ri)},
		{op: "route-broadcast", route: scalingMessages(bi)},
		{op: "sort-presorted", values: workload.ScalePresortedValues(n)},
	}, nil
}

// rowsEqual compares per-node output rows, treating absent and empty rows as
// equal (the dense and sparse schedulers may differ in which they produce
// for inactive nodes).
func rowsEqual[T any](a, b [][]T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) == 0 && len(b[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// measureScaling runs one frontier point: a verification/warm-up pass (with
// the dense cross-check when n allows it) followed by iters timed runs
// through the shared measurement helper.
func measureScaling(n, iters int, o scalingOp) (experiments.ScalingBench, error) {
	sparseOpts := []cc.Option{cc.WithAlgorithm(cc.AlgorithmAuto), cc.WithSparsePath()}
	var strategy string
	var stats cc.Stats
	verified := false

	// Warm-up pass doubling as the correctness pin.
	if o.route != nil {
		sres, err := cc.Route(n, o.route, sparseOpts...)
		if err != nil {
			return experiments.ScalingBench{}, err
		}
		strategy, stats = sres.Strategy.String(), sres.Stats
		if n <= denseCrossCheckMaxN {
			dres, err := cc.Route(n, o.route, cc.WithAlgorithm(cc.AlgorithmAuto))
			if err != nil {
				return experiments.ScalingBench{}, fmt.Errorf("dense cross-check: %w", err)
			}
			if sres.Strategy != dres.Strategy || sres.Stats != dres.Stats || !rowsEqual(sres.Delivered, dres.Delivered) {
				return experiments.ScalingBench{}, fmt.Errorf("sparse path diverges from dense scheduler (%s n=%d)", o.op, n)
			}
			verified = true
		}
	} else {
		sres, err := cc.Sort(n, o.values, sparseOpts...)
		if err != nil {
			return experiments.ScalingBench{}, err
		}
		strategy, stats = sres.Strategy.String(), sres.Stats
		if n <= denseCrossCheckMaxN {
			dres, err := cc.Sort(n, o.values, cc.WithAlgorithm(cc.AlgorithmAuto))
			if err != nil {
				return experiments.ScalingBench{}, fmt.Errorf("dense cross-check: %w", err)
			}
			if sres.Strategy != dres.Strategy || sres.Stats != dres.Stats || sres.Total != dres.Total ||
				!reflect.DeepEqual(sres.Starts, dres.Starts) || !rowsEqual(sres.Batches, dres.Batches) {
				return experiments.ScalingBench{}, fmt.Errorf("sparse path diverges from dense scheduler (%s n=%d)", o.op, n)
			}
			verified = true
		}
	}

	m, err := experiments.MeasureOp(iters, func() error {
		if o.route != nil {
			_, opErr := cc.Route(n, o.route, sparseOpts...)
			return opErr
		}
		_, opErr := cc.Sort(n, o.values, sparseOpts...)
		return opErr
	})
	if err != nil {
		return experiments.ScalingBench{}, err
	}
	return experiments.ScalingBench{
		Op:            o.op,
		N:             n,
		Strategy:      strategy,
		Rounds:        stats.Rounds,
		TotalMessages: stats.TotalMessages,
		TotalWords:    stats.TotalWords,
		Iterations:    iters,
		NsPerOp:       m.NsPerOp,
		AllocsPerOp:   m.AllocsPerOp,
		BytesPerOp:    m.BytesPerOp,
		PeakRSSBytes:  experiments.PeakRSSBytes(),
		Verified:      verified,
	}, nil
}

// runScalingBench measures the scale-out frontier at every size up to maxN
// and merges the resulting curve into the scaling section of the document at
// path, leaving the other sections untouched.
func runScalingBench(path string, maxN int) error {
	prev, err := experiments.ReadProtocolDoc(path)
	if err != nil {
		return err
	}
	if prev.Tool == "" { // fresh document (standalone artifact runs)
		prev.Tool = "cliquebench -scaling-json"
		prev.Schema = "congestedclique/bench-protocol/v1"
	}
	sec := prev.Scaling
	if sec == nil {
		sec = &experiments.ScalingSection{}
	}
	sec.Tool = "cliquebench -scaling-json"
	sec.Schema = "congestedclique/bench-scaling/v1"
	sec.Note = "full sparse-path protocol runs (AlgorithmAuto + WithSparsePath, one-shot handles) per point; " +
		"peak_rss_bytes is the process VmHWM sampled after the point and is monotone across one invocation " +
		"(sizes run ascending, so it reads as peak RSS after completing size n); verified means the sparse " +
		"delivery was compared element by element against the dense scheduler on the identical instance, " +
		"done at every n <= 1024 where the dense O(n^2) demand matrix is affordable; single-core container " +
		"(GOMAXPROCS=1), so wall times show the simulation's sequential cost, not protocol parallelism"

	for _, n := range scalingSizes {
		if n > maxN {
			continue
		}
		ops, err := scalingOps(n)
		if err != nil {
			return err
		}
		iters := 3
		if n >= 4096 {
			iters = 1
		}
		for _, o := range ops {
			run, err := measureScaling(n, iters, o)
			if err != nil {
				return fmt.Errorf("%s n=%d: %w", o.op, n, err)
			}
			sec.MergeScalingRun(run)
			fmt.Printf("scaling %-16s n=%-6d %-10s rounds=%-2d words=%-8d %12d ns/op %10d B/op %8d allocs/op rss=%d MiB verified=%v\n",
				run.Op, run.N, run.Strategy, run.Rounds, run.TotalWords,
				run.NsPerOp, run.BytesPerOp, run.AllocsPerOp, run.PeakRSSBytes>>20, run.Verified)
		}
	}
	prev.Scaling = sec
	return experiments.WriteProtocolDoc(path, prev)
}
