// Command benchguard compares the allocs/op of a `go test -bench -benchmem`
// run (read from stdin) against a committed baseline and fails when any
// benchmark regresses by more than the allowed factor. CI pipes the protocol
// benchmarks through it so the zero-allocation property of the flat-frame
// layer cannot silently rot:
//
//	go test -run '^$' -bench '^(BenchmarkRoute|BenchmarkSort)$' -benchmem -benchtime 1x . | \
//	    go run ./cmd/benchguard -baseline bench_protocol_baseline.json
//
// Only allocs/op are guarded: they are deterministic per environment, unlike
// ns/op on shared CI runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
)

// Baseline maps a benchmark name (e.g. "BenchmarkRoute/n=256") to its
// recorded allocs/op.
type Baseline struct {
	Note        string           `json:"note"`
	AllocsPerOp map[string]int64 `json:"allocs_per_op"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)

func main() {
	log.SetFlags(0)
	baselinePath := flag.String("baseline", "bench_protocol_baseline.json", "committed baseline file")
	factor := flag.Float64("factor", 2.0, "maximum allowed allocs/op regression factor")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatalf("benchguard: read baseline: %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("benchguard: parse baseline: %v", err)
	}

	seen := 0
	failed := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the benchmark output through
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		allocs, err := strconv.ParseInt(m[4], 10, 64)
		if err != nil {
			continue
		}
		want, ok := base.AllocsPerOp[name]
		if !ok {
			continue
		}
		seen++
		limit := int64(float64(want) * *factor)
		if allocs > limit {
			failed++
			log.Printf("benchguard: %s regressed: %d allocs/op, baseline %d (limit %d)", name, allocs, want, limit)
		} else {
			log.Printf("benchguard: %s ok: %d allocs/op (baseline %d, limit %d)", name, allocs, want, limit)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchguard: read stdin: %v", err)
	}
	if seen == 0 {
		log.Fatal("benchguard: no baselined benchmarks found in input")
	}
	if failed > 0 {
		os.Exit(1)
	}
}
