// Command cliqueload is the concurrent load generator for the session API's
// engine pool: it drives M concurrent streams of mixed Route/Sort operations
// against one pooled Clique handle and reports aggregate throughput and
// latency percentiles. Every result is cross-checked bit for bit against a
// serial golden run unless -verify=false.
//
//	# 8 streams of mixed ops on a 256-node clique, pool of 4 engines
//	go run ./cmd/cliqueload -n 256 -concurrency 4 -streams 8 -ops 8 -workload mixed
//
//	# throughput scaling sweep: serial handle vs pooled handle at k=2,4,8
//	go run ./cmd/cliqueload -n 256 -sweep 1,2,4,8 -json load.json
//
// In-process engines share the machine's memory bandwidth and one run
// already spawns one goroutine per node, so scaling with k is bounded by
// cores (the report records cores and GOMAXPROCS alongside every number —
// compare like with like).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"congestedclique/internal/loadgen"
)

// report is the JSON schema of one measured configuration.
type report struct {
	N            int     `json:"n"`
	Concurrency  int     `json:"concurrency"`
	Streams      int     `json:"streams"`
	OpsPerStream int     `json:"ops_per_stream"`
	Workload     string  `json:"workload"`
	Cores        int     `json:"cores"`
	Gomaxprocs   int     `json:"gomaxprocs"`
	TotalOps     int     `json:"total_ops"`
	WallMs       float64 `json:"wall_ms"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	P50Ms        float64 `json:"latency_p50_ms"`
	P90Ms        float64 `json:"latency_p90_ms"`
	P99Ms        float64 `json:"latency_p99_ms"`
	Verified     int     `json:"verified_ops"`
	SucceededOps int     `json:"succeeded_ops"`
	FailedOps    int     `json:"failed_ops"`
	StreamErrors []int   `json:"stream_errors,omitempty"`
	FirstError   string  `json:"first_error,omitempty"`
	Retries      int64   `json:"retries"`
	// SpeedupVsSerial is aggregate throughput relative to the sweep's k=1
	// entry (only set in sweep mode).
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

func toReport(r loadgen.Result) report {
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	return report{
		N:            r.N,
		Concurrency:  r.Concurrency,
		Streams:      r.Streams,
		OpsPerStream: r.OpsPerStream,
		Workload:     r.Workload,
		Cores:        r.Cores,
		Gomaxprocs:   r.Gomaxprocs,
		TotalOps:     r.TotalOps,
		WallMs:       ms(r.Wall),
		OpsPerSec:    r.OpsPerSec,
		P50Ms:        ms(r.P50),
		P90Ms:        ms(r.P90),
		P99Ms:        ms(r.P99),
		Verified:     r.Verified,
		SucceededOps: r.SucceededOps,
		FailedOps:    r.FailedOps,
		StreamErrors: r.StreamErrors,
		FirstError:   r.FirstError,
		Retries:      r.Retries,
	}
}

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 256, "clique size")
	concurrency := flag.Int("concurrency", runtime.GOMAXPROCS(0), "engine-pool size k (WithMaxConcurrency)")
	streams := flag.Int("streams", 0, "concurrent caller streams (default: same as -concurrency)")
	ops := flag.Int("ops", 8, "operations per stream")
	workloadKind := flag.String("workload", "mixed", "operation mix: route, sort, or mixed")
	verify := flag.Bool("verify", true, "cross-check every result against a serial golden run")
	faultEvery := flag.Int("fault-every", 0, "inject a deterministic transient fault into every k-th op of each stream (0 = none)")
	retries := flag.Int("retries", 0, "retry budget (WithRetry) for injected-fault operations")
	retryBackoff := flag.Duration("retry-backoff", 0, "base backoff between retries of injected-fault operations")
	sweep := flag.String("sweep", "", "comma-separated pool sizes to sweep (e.g. 1,2,4,8); overrides -concurrency, streams follow k")
	jsonPath := flag.String("json", "", "write the report as JSON to this file")
	timeout := flag.Duration("timeout", 0, "overall deadline (0 = none)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	ks := []int{*concurrency}
	if *sweep != "" {
		ks = ks[:0]
		for _, part := range strings.Split(*sweep, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || k < 1 {
				log.Fatalf("cliqueload: bad -sweep entry %q", part)
			}
			ks = append(ks, k)
		}
	}

	fmt.Printf("cliqueload: n=%d workload=%s ops/stream=%d verify=%v cores=%d GOMAXPROCS=%d\n",
		*n, *workloadKind, *ops, *verify, runtime.NumCPU(), runtime.GOMAXPROCS(0))

	var reports []report
	wall := make([]time.Duration, 0, len(ks))
	for _, k := range ks {
		s := *streams
		if s == 0 || *sweep != "" {
			s = k
		}
		res, err := loadgen.Run(ctx, loadgen.Config{
			N:            *n,
			Concurrency:  k,
			Streams:      s,
			OpsPerStream: *ops,
			Workload:     *workloadKind,
			Verify:       *verify,
			FaultEvery:   *faultEvery,
			Retries:      *retries,
			RetryBackoff: *retryBackoff,
		})
		if err != nil {
			log.Fatalf("cliqueload: k=%d: %v", k, err)
		}
		reports = append(reports, toReport(res))
		wall = append(wall, res.Wall)
	}
	// Speedups are a sweep-mode concept: they compare against the sweep's
	// own k=1 entry, wherever in the sweep it appears.
	if *sweep != "" {
		var serial float64
		for _, r := range reports {
			if r.Concurrency == 1 {
				serial = r.OpsPerSec
				break
			}
		}
		if serial > 0 {
			for i := range reports {
				reports[i].SpeedupVsSerial = reports[i].OpsPerSec / serial
			}
		}
	}

	fmt.Printf("%-4s %-8s %-9s %-7s %-8s %10s %12s %10s %10s %10s\n",
		"k", "streams", "ops", "failed", "retries", "wall", "ops/sec", "p50", "p90", "p99")
	for i, rep := range reports {
		fmt.Printf("%-4d %-8d %-9d %-7d %-8d %10s %12.2f %9.1fms %9.1fms %9.1fms",
			rep.Concurrency, rep.Streams, rep.TotalOps, rep.FailedOps, rep.Retries,
			wall[i].Round(time.Millisecond), rep.OpsPerSec, rep.P50Ms, rep.P90Ms, rep.P99Ms)
		if rep.SpeedupVsSerial > 0 {
			fmt.Printf("  (%0.2fx vs k=1)", rep.SpeedupVsSerial)
		}
		fmt.Println()
	}
	for _, rep := range reports {
		if rep.FailedOps > 0 {
			fmt.Printf("k=%d stream errors: %v (first: %s)\n", rep.Concurrency, rep.StreamErrors, rep.FirstError)
		}
	}
	if *verify {
		total := 0
		for _, r := range reports {
			total += r.Verified
		}
		fmt.Printf("verified %d operations bit-identical to serial execution\n", total)
	}

	if *jsonPath != "" {
		doc := struct {
			Tool    string   `json:"tool"`
			Schema  string   `json:"schema"`
			Results []report `json:"results"`
		}{Tool: "cliqueload", Schema: "congestedclique/cliqueload/v1", Results: reports}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatalf("cliqueload: marshal: %v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			log.Fatalf("cliqueload: write %s: %v", *jsonPath, err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
