// Command cliqueload is the concurrent load generator for the session API's
// engine pool and for a running cliqued server: it drives M concurrent
// streams of mixed Route/Sort operations — against one pooled in-process
// Clique handle, or over the wire with -addr — and reports aggregate
// throughput and latency percentiles. Every result is cross-checked bit for
// bit against a serial golden run unless -verify=false.
//
//	# 8 streams of mixed ops on a 256-node clique, pool of 4 engines
//	go run ./cmd/cliqueload -n 256 -concurrency 4 -streams 8 -ops 8 -workload mixed
//
//	# throughput scaling sweep: serial handle vs pooled handle at k=2,4,8
//	go run ./cmd/cliqueload -n 256 -sweep 1,2,4,8 -json load.json
//
//	# closed-loop network run against a cliqued daemon, two stream levels
//	go run ./cmd/cliqueload -addr 127.0.0.1:9024 -sweep 2,8 -ops 16
//
//	# open loop: offer 500 ops/sec for 5s regardless of completions — the
//	# honest way to measure past saturation; sheds are counted separately
//	go run ./cmd/cliqueload -addr 127.0.0.1:9024 -rate 500 -duration 5s
//
// In network mode -sweep sweeps client stream (connection) counts — the
// server's engine-pool size is fixed by the daemon and echoed in the k
// column. -protocol-json merges the run into the service section of
// BENCH_protocol.json.
//
// In-process engines share the machine's memory bandwidth and one run
// already spawns one goroutine per node, so scaling with k is bounded by
// cores (the report records cores and GOMAXPROCS alongside every number —
// compare like with like).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"congestedclique/internal/experiments"
	"congestedclique/internal/loadgen"
	"congestedclique/internal/service"
)

// report is the JSON schema of one measured configuration.
type report struct {
	Mode         string  `json:"mode"`
	Addr         string  `json:"addr,omitempty"`
	N            int     `json:"n"`
	Concurrency  int     `json:"concurrency"`
	Streams      int     `json:"streams"`
	OpsPerStream int     `json:"ops_per_stream,omitempty"`
	Rate         float64 `json:"rate_ops_per_sec,omitempty"`
	Workload     string  `json:"workload"`
	Cores        int     `json:"cores"`
	Gomaxprocs   int     `json:"gomaxprocs"`
	TotalOps     int     `json:"total_ops"`
	WallMs       float64 `json:"wall_ms"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	P50Ms        float64 `json:"latency_p50_ms"`
	P90Ms        float64 `json:"latency_p90_ms"`
	P99Ms        float64 `json:"latency_p99_ms"`
	P999Ms       float64 `json:"latency_p999_ms"`
	Verified     int     `json:"verified_ops"`
	SucceededOps int     `json:"succeeded_ops"`
	FailedOps    int     `json:"failed_ops"`
	SheddedOps   int     `json:"shedded_ops"`
	StreamErrors []int   `json:"stream_errors,omitempty"`
	FirstError   string  `json:"first_error,omitempty"`
	Retries      int64   `json:"retries"`
	// PlanCacheHits/PlanCacheMisses are the server-side plan-cache counter
	// deltas over the run (network mode against a -plan-cache server only).
	PlanCacheHits   int64 `json:"plan_cache_hits,omitempty"`
	PlanCacheMisses int64 `json:"plan_cache_misses,omitempty"`
	// SpeedupVsSerial is aggregate throughput relative to the sweep's k=1
	// entry (only set in in-process sweep mode).
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func toReport(r loadgen.Result) report {
	return report{
		Mode:            "in-process",
		N:               r.N,
		Concurrency:     r.Concurrency,
		Streams:         r.Streams,
		OpsPerStream:    r.OpsPerStream,
		Workload:        r.Workload,
		Cores:           r.Cores,
		Gomaxprocs:      r.Gomaxprocs,
		TotalOps:        r.TotalOps,
		WallMs:          ms(r.Wall),
		OpsPerSec:       r.OpsPerSec,
		P50Ms:           ms(r.P50),
		P90Ms:           ms(r.P90),
		P99Ms:           ms(r.P99),
		P999Ms:          ms(r.P999),
		Verified:        r.Verified,
		SucceededOps:    r.SucceededOps,
		FailedOps:       r.FailedOps,
		SheddedOps:      r.SheddedOps,
		StreamErrors:    r.StreamErrors,
		FirstError:      r.FirstError,
		Retries:         r.Retries,
		PlanCacheHits:   r.PlanCacheHits,
		PlanCacheMisses: r.PlanCacheMisses,
	}
}

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 256, "clique size (network mode: adopted from the server unless set explicitly)")
	concurrency := flag.Int("concurrency", runtime.GOMAXPROCS(0), "engine-pool size k (WithMaxConcurrency; in-process mode)")
	streams := flag.Int("streams", 0, "concurrent caller streams / connections (default: same as -concurrency, or 4 in network mode)")
	ops := flag.Int("ops", 8, "operations per stream (closed loop)")
	workloadKind := flag.String("workload", "mixed", "operation mix: route, sort, or mixed")
	verify := flag.Bool("verify", true, "cross-check every result against a serial golden run")
	faultEvery := flag.Int("fault-every", 0, "inject a deterministic transient fault into every k-th op of each stream (0 = none)")
	retries := flag.Int("retries", 0, "retry budget (WithRetry) for injected-fault operations")
	retryBackoff := flag.Duration("retry-backoff", 0, "base backoff between retries of injected-fault operations")
	sweep := flag.String("sweep", "", "comma-separated levels to sweep: pool sizes in-process (streams follow k), stream counts in network mode")
	jsonPath := flag.String("json", "", "write the report as JSON to this file")
	timeout := flag.Duration("timeout", 0, "overall deadline (0 = none)")
	addr := flag.String("addr", "", "network mode: drive the cliqued server at this host:port over the wire protocol")
	rate := flag.Float64("rate", 0, "network mode: open-loop offered ops/sec (0 = closed loop)")
	duration := flag.Duration("duration", 5*time.Second, "network mode: open-loop measured window (with -rate)")
	opDeadline := flag.Duration("deadline", 0, "network mode: per-operation deadline, microsecond wire granularity (0 = none)")
	outPath := flag.String("out", "", "also write the printed table to this file")
	protocolJSON := flag.String("protocol-json", "", "network mode: merge the run into the service section of this BENCH_protocol.json")
	requireZeroFailed := flag.Bool("require-zero-failed", false, "exit nonzero if any operation hard-failed (sheds do not count)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	levels := []int{0} // placeholder; resolved per mode below
	if *sweep != "" {
		levels = levels[:0]
		for _, part := range strings.Split(*sweep, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || k < 1 {
				log.Fatalf("cliqueload: bad -sweep entry %q", part)
			}
			levels = append(levels, k)
		}
	}

	var reports []report
	if *addr != "" {
		reports = runNetworkMode(ctx, netOptions{
			addr: *addr, n: *n, nSet: flagWasSet("n"), streams: *streams,
			ops: *ops, workload: *workloadKind, verify: *verify,
			faultEvery: *faultEvery, retries: *retries, retryBackoff: *retryBackoff,
			rate: *rate, duration: *duration, opDeadline: *opDeadline,
			sweepLevels: levels, sweeping: *sweep != "",
			protocolJSON: *protocolJSON,
		})
	} else {
		if *protocolJSON != "" {
			log.Fatal("cliqueload: -protocol-json requires network mode (-addr); cmd/cliquebench owns the in-process sections")
		}
		if *sweep == "" {
			levels[0] = *concurrency
		}
		fmt.Printf("cliqueload: n=%d workload=%s ops/stream=%d verify=%v cores=%d GOMAXPROCS=%d\n",
			*n, *workloadKind, *ops, *verify, runtime.NumCPU(), runtime.GOMAXPROCS(0))
		for _, k := range levels {
			s := *streams
			if s == 0 || *sweep != "" {
				s = k
			}
			res, err := loadgen.Run(ctx, loadgen.Config{
				N:            *n,
				Concurrency:  k,
				Streams:      s,
				OpsPerStream: *ops,
				Workload:     *workloadKind,
				Verify:       *verify,
				FaultEvery:   *faultEvery,
				Retries:      *retries,
				RetryBackoff: *retryBackoff,
			})
			if err != nil {
				log.Fatalf("cliqueload: k=%d: %v", k, err)
			}
			reports = append(reports, toReport(res))
		}
		// Speedups are a sweep-mode concept: they compare against the
		// sweep's own k=1 entry, wherever in the sweep it appears.
		if *sweep != "" {
			var serial float64
			for _, r := range reports {
				if r.Concurrency == 1 {
					serial = r.OpsPerSec
					break
				}
			}
			if serial > 0 {
				for i := range reports {
					reports[i].SpeedupVsSerial = reports[i].OpsPerSec / serial
				}
			}
		}
	}

	table := formatTable(reports)
	fmt.Print(table)
	if *verify {
		total := 0
		for _, r := range reports {
			total += r.Verified
		}
		fmt.Printf("verified %d operations bit-identical to serial execution\n", total)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(table), 0o644); err != nil {
			log.Fatalf("cliqueload: write %s: %v", *outPath, err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}

	if *jsonPath != "" {
		doc := struct {
			Tool    string   `json:"tool"`
			Schema  string   `json:"schema"`
			Results []report `json:"results"`
		}{Tool: "cliqueload", Schema: "congestedclique/cliqueload/v1", Results: reports}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatalf("cliqueload: marshal: %v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			log.Fatalf("cliqueload: write %s: %v", *jsonPath, err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if *requireZeroFailed {
		for _, rep := range reports {
			if rep.FailedOps > 0 {
				log.Fatalf("cliqueload: -require-zero-failed: %d operations hard-failed (first: %s)",
					rep.FailedOps, rep.FirstError)
			}
		}
	}
}

// netOptions carries the resolved flag values of one network-mode run.
type netOptions struct {
	addr         string
	n            int
	nSet         bool
	streams      int
	ops          int
	workload     string
	verify       bool
	faultEvery   int
	retries      int
	retryBackoff time.Duration
	rate         float64
	duration     time.Duration
	opDeadline   time.Duration
	sweepLevels  []int
	sweeping     bool
	protocolJSON string
}

// runNetworkMode drives a cliqued server: one closed-loop run per stream
// level, or a single open-loop run when -rate is set. The server's clique
// size and pool configuration are learned over the wire (OpServerStats) so
// the rows carry the server's k, not the client's GOMAXPROCS.
func runNetworkMode(ctx context.Context, o netOptions) []report {
	cl, err := service.Dial(o.addr)
	if err != nil {
		log.Fatalf("cliqueload: dial %s: %v", o.addr, err)
	}
	st, err := cl.ServerStats()
	cl.Close()
	if err != nil {
		log.Fatalf("cliqueload: server stats from %s: %v", o.addr, err)
	}
	if o.nSet && o.n != st.N {
		log.Fatalf("cliqueload: server at %s serves n=%d, -n asked for %d", o.addr, st.N, o.n)
	}
	o.n = st.N

	levels := o.sweepLevels
	if !o.sweeping {
		s := o.streams
		if s == 0 {
			s = 4
		}
		levels = []int{s}
	}
	if o.rate > 0 && len(levels) > 1 {
		log.Fatal("cliqueload: open loop (-rate) takes a single -streams level, not a sweep")
	}

	mode := "closed"
	if o.rate > 0 {
		mode = "open"
	}
	fmt.Printf("cliqueload: addr=%s n=%d server k=%d queue=%d batch=%d workload=%s mode=%s verify=%v\n",
		o.addr, o.n, st.MaxConcurrency, st.QueueDepth, st.BatchMaxOps, o.workload, mode, o.verify)

	var reports []report
	for _, s := range levels {
		res, err := loadgen.RunNetwork(ctx, loadgen.NetworkConfig{
			Config: loadgen.Config{
				N:            o.n,
				Concurrency:  st.MaxConcurrency,
				Streams:      s,
				OpsPerStream: o.ops,
				Workload:     o.workload,
				Verify:       o.verify,
				FaultEvery:   o.faultEvery,
				Retries:      o.retries,
				RetryBackoff: o.retryBackoff,
			},
			Addr:       o.addr,
			Rate:       o.rate,
			Duration:   o.duration,
			OpDeadline: o.opDeadline,
		})
		if err != nil {
			log.Fatalf("cliqueload: streams=%d: %v", s, err)
		}
		rep := toReport(res)
		rep.Mode = "net-" + mode
		rep.Addr = o.addr
		rep.Rate = o.rate
		reports = append(reports, rep)
	}

	if o.protocolJSON != "" {
		writeServiceSection(o, st, mode, reports)
	}
	return reports
}

// writeServiceSection merges the run's rows into the service section of
// BENCH_protocol.json, preserving every other tool's sections.
func writeServiceSection(o netOptions, st *service.StatsReply, mode string, reports []report) {
	doc, err := experiments.ReadProtocolDoc(o.protocolJSON)
	if err != nil {
		log.Fatalf("cliqueload: %v", err)
	}
	sec := doc.Service
	if sec == nil || sec.N != o.n || sec.ServerConcurrency != st.MaxConcurrency ||
		sec.QueueDepth != st.QueueDepth {
		sec = &experiments.ServiceSection{
			Tool:              "cliqueload",
			Schema:            "congestedclique/cliqueload-service/v1",
			N:                 o.n,
			ServerConcurrency: st.MaxConcurrency,
			QueueDepth:        st.QueueDepth,
			BatchMaxOps:       st.BatchMaxOps,
			Note: "measured end to end over the wire protocol against a local cliqued; " +
				"closed rows fix the stream count, open rows hold an offered rate through " +
				"saturation — shedded_ops are named bounded-queue rejections, failed_ops " +
				"must stay zero for the overload claim to hold",
		}
	}
	for _, rep := range reports {
		sec.MergeServiceRun(experiments.ServiceBench{
			Mode:            mode,
			Workload:        rep.Workload,
			Streams:         rep.Streams,
			Rate:            rep.Rate,
			OfferedOps:      rep.TotalOps,
			SucceededOps:    rep.SucceededOps,
			SheddedOps:      rep.SheddedOps,
			FailedOps:       rep.FailedOps,
			Retries:         rep.Retries,
			PlanCacheHits:   rep.PlanCacheHits,
			PlanCacheMisses: rep.PlanCacheMisses,
			VerifiedOps:     rep.Verified,
			OpsPerSec:       rep.OpsPerSec,
			P50Ms:           rep.P50Ms,
			P99Ms:           rep.P99Ms,
			P999Ms:          rep.P999Ms,
			WallMs:          rep.WallMs,
		})
	}
	doc.Service = sec
	if err := experiments.WriteProtocolDoc(o.protocolJSON, doc); err != nil {
		log.Fatalf("cliqueload: write %s: %v", o.protocolJSON, err)
	}
	fmt.Printf("merged service section into %s\n", o.protocolJSON)
}

// formatTable renders the fixed-width summary table shared by stdout and
// -out.
func formatTable(reports []report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-8s %-9s %-7s %-6s %-8s %10s %12s %9s %9s %9s %9s\n",
		"k", "streams", "ops", "failed", "shed", "retries", "wall", "ops/sec", "p50", "p90", "p99", "p999")
	for _, rep := range reports {
		fmt.Fprintf(&b, "%-4d %-8d %-9d %-7d %-6d %-8d %10s %12.2f %8.1fms %8.1fms %8.1fms %8.1fms",
			rep.Concurrency, rep.Streams, rep.TotalOps, rep.FailedOps, rep.SheddedOps, rep.Retries,
			time.Duration(rep.WallMs*float64(time.Millisecond)).Round(time.Millisecond),
			rep.OpsPerSec, rep.P50Ms, rep.P90Ms, rep.P99Ms, rep.P999Ms)
		if rep.SpeedupVsSerial > 0 {
			fmt.Fprintf(&b, "  (%0.2fx vs k=1)", rep.SpeedupVsSerial)
		}
		if rep.PlanCacheHits+rep.PlanCacheMisses > 0 {
			fmt.Fprintf(&b, "  (cache %d hits / %d misses)", rep.PlanCacheHits, rep.PlanCacheMisses)
		}
		b.WriteByte('\n')
	}
	for _, rep := range reports {
		if rep.FailedOps > 0 {
			fmt.Fprintf(&b, "k=%d stream errors: %v (first: %s)\n", rep.Concurrency, rep.StreamErrors, rep.FirstError)
		}
	}
	return b.String()
}

// flagWasSet reports whether the named flag was given on the command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
