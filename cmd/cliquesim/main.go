// Command cliquesim runs a single routing, sorting, rank, mode or small-key
// workload on the simulated congested clique and prints the execution
// statistics the paper's bounds are stated in (rounds, per-edge words,
// traffic).
//
// Examples:
//
//	cliquesim -op route -n 256 -pattern uniform -alg deterministic
//	cliquesim -op route -n 256 -pattern skewed  -alg naive-direct
//	cliquesim -op sort  -n 144 -dist duplicate-heavy
//	cliquesim -op smallkeys -n 1024 -domain 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"congestedclique/internal/baseline"
	"congestedclique/internal/clique"
	"congestedclique/internal/core"
	"congestedclique/internal/tables"
	"congestedclique/internal/verify"
	"congestedclique/internal/workload"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func run() error {
	var (
		op      = flag.String("op", "route", "operation: route | sort | rank | mode | smallkeys")
		n       = flag.Int("n", 64, "number of clique nodes")
		per     = flag.Int("per", -1, "messages/keys per node (default n)")
		pattern = flag.String("pattern", "uniform", "routing pattern: uniform | skewed | set-adversarial | random-partial | self-heavy")
		dist    = flag.String("dist", "uniform", "key distribution: uniform | duplicate-heavy | pre-sorted | reverse-sorted | clustered | constant")
		alg     = flag.String("alg", "deterministic", "algorithm: deterministic | low-compute | randomized | naive-direct")
		domain  = flag.Int("domain", 4, "key domain size for -op smallkeys")
		seed    = flag.Int64("seed", 1, "workload and randomized-algorithm seed")
		strict  = flag.Int("strict", 0, "fail if any edge carries more than this many words per round (0 = record only)")
	)
	flag.Parse()
	if *per < 0 {
		*per = *n
	}

	var opts []clique.Option
	if *strict > 0 {
		opts = append(opts, clique.WithStrictEdgeBudget(*strict))
	}
	nw, err := clique.New(*n, opts...)
	if err != nil {
		return err
	}

	switch *op {
	case "route":
		return runRouting(nw, *n, *per, *pattern, *alg, *seed)
	case "sort":
		return runSorting(nw, *n, *per, *dist, *alg, *seed)
	case "rank":
		return runRank(nw, *n, *per, *dist, *seed)
	case "mode":
		return runMode(nw, *n, *per, *dist, *seed)
	case "smallkeys":
		return runSmallKeys(nw, *n, *per, *domain, *seed)
	default:
		return fmt.Errorf("unknown operation %q", *op)
	}
}

func printStats(caption string, m clique.Metrics) {
	t := tables.New(caption, "metric", "value")
	t.AddRow("rounds", m.Rounds)
	t.AddRow("max words per edge per round", m.MaxEdgeWords)
	t.AddRow("max packets per edge per round", m.MaxEdgeMessages)
	t.AddRow("total packets", m.TotalMessages)
	t.AddRow("total words", m.TotalWords)
	if m.MaxStepsPerNode > 0 {
		t.AddRow("max self-reported steps per node", m.MaxStepsPerNode)
	}
	if m.MaxMemoryWordsPerNode > 0 {
		t.AddRow("max self-reported memory words per node", m.MaxMemoryWordsPerNode)
	}
	fmt.Println(t.String())
}

func runRouting(nw *clique.Network, n, per int, pattern, alg string, seed int64) error {
	inst, err := workload.NewRoutingInstance(n, per, workload.RoutingPattern(pattern), seed)
	if err != nil {
		return err
	}
	results := make([][]core.Message, n)
	err = nw.Run(func(nd *clique.Node) error {
		var (
			out  []core.Message
			rErr error
		)
		switch alg {
		case "deterministic":
			out, rErr = core.Route(nd, inst.Msgs[nd.ID()])
		case "low-compute":
			out, rErr = core.LowComputeRoute(nd, inst.Msgs[nd.ID()])
		case "randomized":
			out, rErr = baseline.RandomizedRoute(nd, inst.Msgs[nd.ID()], seed)
		case "naive-direct":
			out, rErr = baseline.NaiveDirectRoute(nd, inst.Msgs[nd.ID()])
		default:
			rErr = fmt.Errorf("unknown algorithm %q", alg)
		}
		if rErr != nil {
			return rErr
		}
		results[nd.ID()] = out
		return nil
	})
	if err != nil {
		return err
	}
	if err := verify.Routing(inst.Msgs, results); err != nil {
		return err
	}
	fmt.Printf("routing %q on n=%d (%d messages, pattern %s): delivery verified\n\n",
		alg, n, inst.TotalMessages(), pattern)
	printStats("execution cost", nw.Metrics())
	return nil
}

func runSorting(nw *clique.Network, n, per int, dist, alg string, seed int64) error {
	inst, err := workload.NewSortingInstance(n, per, workload.KeyDistribution(dist), seed)
	if err != nil {
		return err
	}
	results := make([]*core.SortResult, n)
	err = nw.Run(func(nd *clique.Node) error {
		var (
			res  *core.SortResult
			sErr error
		)
		switch alg {
		case "randomized":
			res, sErr = baseline.RandomizedSampleSort(nd, inst.Keys[nd.ID()], seed)
		default:
			res, sErr = core.Sort(nd, inst.Keys[nd.ID()])
		}
		if sErr != nil {
			return sErr
		}
		results[nd.ID()] = res
		return nil
	})
	if err != nil {
		return err
	}
	if err := verify.Sorting(inst.Keys, results); err != nil {
		return err
	}
	fmt.Printf("sorting %q on n=%d (%d keys, distribution %s): output verified\n\n", alg, n, inst.TotalKeys(), dist)
	printStats("execution cost", nw.Metrics())
	return nil
}

func runRank(nw *clique.Network, n, per int, dist string, seed int64) error {
	inst, err := workload.NewSortingInstance(n, per, workload.KeyDistribution(dist), seed)
	if err != nil {
		return err
	}
	results := make([]*core.RankResult, n)
	err = nw.Run(func(nd *clique.Node) error {
		res, rErr := core.Rank(nd, inst.Keys[nd.ID()])
		if rErr != nil {
			return rErr
		}
		results[nd.ID()] = res
		return nil
	})
	if err != nil {
		return err
	}
	if err := verify.Ranks(inst.Keys, results); err != nil {
		return err
	}
	fmt.Printf("rank-in-union (Corollary 4.6) on n=%d: %d distinct values, output verified\n\n", n, results[0].DistinctTotal)
	printStats("execution cost", nw.Metrics())
	return nil
}

func runMode(nw *clique.Network, n, per int, dist string, seed int64) error {
	inst, err := workload.NewSortingInstance(n, per, workload.KeyDistribution(dist), seed)
	if err != nil {
		return err
	}
	modes := make([]*core.ModeResult, n)
	err = nw.Run(func(nd *clique.Node) error {
		res, mErr := core.Mode(nd, inst.Keys[nd.ID()])
		if mErr != nil {
			return mErr
		}
		modes[nd.ID()] = res
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("mode on n=%d: value %d occurs %d times\n\n", n, modes[0].Value, modes[0].Count)
	printStats("execution cost", nw.Metrics())
	return nil
}

func runSmallKeys(nw *clique.Network, n, per, domain int, seed int64) error {
	values, err := workload.NewSmallKeyInstance(n, per, domain, seed)
	if err != nil {
		return err
	}
	results := make([]*core.SmallKeyResult, n)
	err = nw.Run(func(nd *clique.Node) error {
		res, cErr := core.SmallKeyCount(nd, values[nd.ID()], domain)
		if cErr != nil {
			return cErr
		}
		results[nd.ID()] = res
		return nil
	})
	if err != nil {
		return err
	}
	if err := verify.Histogram(values, results[0]); err != nil {
		return err
	}
	fmt.Printf("small-key counting (Section 6.3) on n=%d, domain %d: histogram verified\n\n", n, domain)
	printStats("execution cost", nw.Metrics())
	return nil
}
