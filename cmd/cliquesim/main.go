// Command cliquesim runs a routing, sorting, rank, mode or small-key
// workload on the simulated congested clique and prints the execution
// statistics the paper's bounds are stated in (rounds, per-edge words,
// traffic). It drives the public session API: one Clique handle is built for
// the chosen size and the workload runs on it -repeat times, so repeated
// runs show the amortized cost a long-lived service sees (cumulative
// statistics are printed when -repeat > 1).
//
// Examples:
//
//	cliquesim -op route -n 256 -pattern uniform -alg deterministic
//	cliquesim -op route -n 256 -pattern skewed  -alg naive-direct
//	cliquesim -op sort  -n 144 -dist duplicate-heavy -repeat 8
//	cliquesim -op smallkeys -n 1024 -domain 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	cc "congestedclique"

	"congestedclique/internal/clique"
	"congestedclique/internal/core"
	"congestedclique/internal/tables"
	"congestedclique/internal/verify"
	"congestedclique/internal/workload"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func run() error {
	var (
		op      = flag.String("op", "route", "operation: route | sort | rank | mode | smallkeys")
		n       = flag.Int("n", 64, "number of clique nodes")
		per     = flag.Int("per", -1, "messages/keys per node (default n)")
		pattern = flag.String("pattern", "uniform", "routing pattern: uniform | skewed | set-adversarial | random-partial | self-heavy")
		dist    = flag.String("dist", "uniform", "key distribution: uniform | duplicate-heavy | pre-sorted | reverse-sorted | clustered | constant")
		alg     = flag.String("alg", "deterministic", "algorithm: deterministic | low-compute | randomized | naive-direct | auto (demand-aware planner, routing only)")
		domain  = flag.Int("domain", 4, "key domain size for -op smallkeys")
		seed    = flag.Int64("seed", 1, "workload and randomized-algorithm seed")
		strict  = flag.Int("strict", 0, "fail if any edge carries more than this many words per round (0 = record only)")
		repeat  = flag.Int("repeat", 1, "run the workload this many times on one session handle")
	)
	flag.Parse()
	if *per < 0 {
		*per = *n
	}
	if *repeat < 1 {
		return fmt.Errorf("-repeat must be at least 1, got %d", *repeat)
	}

	algorithm, err := parseAlgorithm(*alg)
	if err != nil {
		return err
	}
	opts := []cc.Option{cc.WithAlgorithm(algorithm), cc.WithSeed(*seed)}
	if *strict > 0 {
		opts = append(opts, cc.WithStrictBandwidth(*strict))
	}
	cl, err := cc.New(*n, opts...)
	if err != nil {
		return err
	}
	defer cl.Close()

	for i := 0; i < *repeat; i++ {
		var runErr error
		switch *op {
		case "route":
			runErr = runRouting(cl, *n, *per, *pattern, *alg, *seed, i == 0)
		case "sort":
			runErr = runSorting(cl, *n, *per, *dist, *alg, *seed, i == 0)
		case "rank":
			runErr = runRank(cl, *n, *per, *dist, *seed, i == 0)
		case "mode":
			runErr = runMode(cl, *n, *per, *dist, *seed, i == 0)
		case "smallkeys":
			runErr = runSmallKeys(cl, *n, *per, *domain, *seed, i == 0)
		default:
			runErr = fmt.Errorf("unknown operation %q", *op)
		}
		if runErr != nil {
			return runErr
		}
	}
	if *repeat > 1 {
		printCumulative(cl.CumulativeStats())
	}
	return nil
}

func parseAlgorithm(name string) (cc.Algorithm, error) {
	switch name {
	case "deterministic":
		return cc.Deterministic, nil
	case "low-compute":
		return cc.LowCompute, nil
	case "randomized":
		return cc.Randomized, nil
	case "naive-direct":
		return cc.NaiveDirect, nil
	case "auto":
		return cc.AlgorithmAuto, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

func printStats(caption string, s cc.Stats) {
	t := tables.New(caption, "metric", "value")
	t.AddRow("rounds", s.Rounds)
	t.AddRow("max words per edge per round", s.MaxEdgeWords)
	t.AddRow("max packets per edge per round", s.MaxEdgeMessages)
	t.AddRow("total packets", s.TotalMessages)
	t.AddRow("total words", s.TotalWords)
	if s.MaxStepsPerNode > 0 {
		t.AddRow("max self-reported steps per node", s.MaxStepsPerNode)
	}
	if s.MaxMemoryWordsPerNode > 0 {
		t.AddRow("max self-reported memory words per node", s.MaxMemoryWordsPerNode)
	}
	fmt.Println(t.String())
}

func printCumulative(c cc.CumulativeStats) {
	t := tables.New("session totals (one handle, all runs)", "metric", "value")
	t.AddRow("operations", c.Operations)
	t.AddRow("rounds", c.Rounds)
	t.AddRow("max words per edge per round", c.MaxEdgeWords)
	t.AddRow("total packets", c.TotalMessages)
	t.AddRow("total words", c.TotalWords)
	fmt.Println(t.String())
}

// toPublicMessages converts a workload instance's core messages to the
// public type, and toCoreDelivered converts results back for verification.
func toPublicMessages(msgs [][]core.Message) [][]cc.Message {
	out := make([][]cc.Message, len(msgs))
	for i, ms := range msgs {
		row := make([]cc.Message, len(ms))
		for j, m := range ms {
			row[j] = cc.Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: int64(m.Payload)}
		}
		out[i] = row
	}
	return out
}

func toCoreDelivered(delivered [][]cc.Message) [][]core.Message {
	out := make([][]core.Message, len(delivered))
	for i, ms := range delivered {
		row := make([]core.Message, len(ms))
		for j, m := range ms {
			row[j] = core.Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: clique.Word(m.Payload)}
		}
		out[i] = row
	}
	return out
}

func toPublicKeys(keys [][]core.Key) [][]cc.Key {
	out := make([][]cc.Key, len(keys))
	for i, ks := range keys {
		row := make([]cc.Key, len(ks))
		for j, k := range ks {
			row[j] = cc.Key{Value: k.Value, Origin: k.Origin, Seq: k.Seq}
		}
		out[i] = row
	}
	return out
}

func runRouting(cl *cc.Clique, n, per int, pattern, alg string, seed int64, report bool) error {
	inst, err := workload.NewRoutingInstance(n, per, workload.RoutingPattern(pattern), seed)
	if err != nil {
		return err
	}
	res, err := cl.Route(context.Background(), toPublicMessages(inst.Msgs))
	if err != nil {
		return err
	}
	if err := verify.Routing(inst.Msgs, toCoreDelivered(res.Delivered)); err != nil {
		return err
	}
	if report {
		fmt.Printf("routing %q on n=%d (%d messages, pattern %s): delivery verified\n",
			alg, n, inst.TotalMessages(), pattern)
		if res.Strategy != 0 {
			fmt.Printf("planner strategy: %s\n", res.Strategy)
		}
		fmt.Println()
		printStats("execution cost", res.Stats)
	}
	return nil
}

func runSorting(cl *cc.Clique, n, per int, dist, alg string, seed int64, report bool) error {
	inst, err := workload.NewSortingInstance(n, per, workload.KeyDistribution(dist), seed)
	if err != nil {
		return err
	}
	res, err := cl.SortKeys(context.Background(), toPublicKeys(inst.Keys))
	if err != nil {
		return err
	}
	results := make([]*core.SortResult, n)
	for i := 0; i < n; i++ {
		batch := make([]core.Key, len(res.Batches[i]))
		for j, k := range res.Batches[i] {
			batch[j] = core.Key{Value: k.Value, Origin: k.Origin, Seq: k.Seq}
		}
		results[i] = &core.SortResult{Batch: batch, Start: res.Starts[i], Total: res.Total}
	}
	if err := verify.Sorting(inst.Keys, results); err != nil {
		return err
	}
	if report {
		fmt.Printf("sorting %q on n=%d (%d keys, distribution %s): output verified\n\n", alg, n, inst.TotalKeys(), dist)
		printStats("execution cost", res.Stats)
	}
	return nil
}

func runRank(cl *cc.Clique, n, per int, dist string, seed int64, report bool) error {
	inst, err := workload.NewSortingInstance(n, per, workload.KeyDistribution(dist), seed)
	if err != nil {
		return err
	}
	// Rank labels plain values with (Origin, Seq) itself, so feed it the
	// instance's values in key order and verify against the same layout.
	values := make([][]int64, n)
	for i, ks := range inst.Keys {
		values[i] = make([]int64, len(ks))
		for j, k := range ks {
			values[i][j] = k.Value
		}
	}
	res, err := cl.Rank(context.Background(), values)
	if err != nil {
		return err
	}
	keys := make([][]core.Key, n)
	results := make([]*core.RankResult, n)
	for i := 0; i < n; i++ {
		keys[i] = make([]core.Key, len(values[i]))
		ranks := make(map[int]int, len(values[i]))
		for j, v := range values[i] {
			keys[i][j] = core.Key{Value: v, Origin: i, Seq: j}
			ranks[j] = res.Ranks[i][j]
		}
		results[i] = &core.RankResult{Ranks: ranks, DistinctTotal: res.DistinctTotal}
	}
	if err := verify.Ranks(keys, results); err != nil {
		return err
	}
	if report {
		fmt.Printf("rank-in-union (Corollary 4.6) on n=%d: %d distinct values, output verified\n\n", n, res.DistinctTotal)
		printStats("execution cost", res.Stats)
	}
	return nil
}

func runMode(cl *cc.Clique, n, per int, dist string, seed int64, report bool) error {
	inst, err := workload.NewSortingInstance(n, per, workload.KeyDistribution(dist), seed)
	if err != nil {
		return err
	}
	values := make([][]int64, n)
	for i, ks := range inst.Keys {
		values[i] = make([]int64, len(ks))
		for j, k := range ks {
			values[i][j] = k.Value
		}
	}
	res, err := cl.Mode(context.Background(), values)
	if err != nil {
		return err
	}
	if report {
		fmt.Printf("mode on n=%d: value %d occurs %d times\n\n", n, res.Value, res.Count)
		printStats("execution cost", res.Stats)
	}
	return nil
}

func runSmallKeys(cl *cc.Clique, n, per, domain int, seed int64, report bool) error {
	values, err := workload.NewSmallKeyInstance(n, per, domain, seed)
	if err != nil {
		return err
	}
	res, err := cl.CountSmallKeys(context.Background(), values, domain)
	if err != nil {
		return err
	}
	if err := verify.Histogram(values, &core.SmallKeyResult{Counts: res.Counts, Domain: domain}); err != nil {
		return err
	}
	if report {
		fmt.Printf("small-key counting (Section 6.3) on n=%d, domain %d: histogram verified\n\n", n, domain)
		printStats("execution cost", res.Stats)
	}
	return nil
}
