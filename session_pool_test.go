package congestedclique

// Tests for the concurrent executor: the engine pool behind one Clique
// handle. Covered here: parallel mixed operations produce results
// bit-identical to a serial handle (the -race hammer), CumulativeStats
// merges exactly across engines, Close drains in-flight checkouts and fails
// later ones with ErrClosed, checkout respects context cancellation while
// waiting, and the pool grows lazily — never beyond WithMaxConcurrency.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// poolGoldens computes the serial reference results every concurrent run is
// checked against.
type poolGoldens struct {
	n      int
	msgs   [][]Message
	values [][]int64
	route  *RouteResult
	sorted *SortResult
	ranked *RankResult
	median Key
	mode   *ModeResult
}

func newPoolGoldens(t *testing.T, n int) *poolGoldens {
	t.Helper()
	g := &poolGoldens{n: n, msgs: benchRouteWorkload(n), values: benchSortWorkload(n)}
	var err error
	if g.route, err = Route(n, g.msgs); err != nil {
		t.Fatal(err)
	}
	if g.sorted, err = Sort(n, g.values); err != nil {
		t.Fatal(err)
	}
	if g.ranked, err = Rank(n, g.values); err != nil {
		t.Fatal(err)
	}
	if g.median, _, err = Median(n, g.values); err != nil {
		t.Fatal(err)
	}
	if g.mode, err = Mode(n, g.values); err != nil {
		t.Fatal(err)
	}
	return g
}

// checkRoute deep-compares a concurrent Route result against the serial
// golden.
func (g *poolGoldens) checkRoute(res *RouteResult) error {
	if res.Stats != g.route.Stats {
		return fmt.Errorf("route stats %+v, serial %+v", res.Stats, g.route.Stats)
	}
	for i := range res.Delivered {
		if len(res.Delivered[i]) != len(g.route.Delivered[i]) {
			return fmt.Errorf("node %d received %d messages, serial %d", i, len(res.Delivered[i]), len(g.route.Delivered[i]))
		}
		for j := range res.Delivered[i] {
			if res.Delivered[i][j] != g.route.Delivered[i][j] {
				return fmt.Errorf("delivery diverged at node %d message %d", i, j)
			}
		}
	}
	return nil
}

func (g *poolGoldens) checkSort(res *SortResult) error {
	if res.Stats != g.sorted.Stats || res.Total != g.sorted.Total {
		return fmt.Errorf("sort stats/total diverged: %+v vs %+v", res.Stats, g.sorted.Stats)
	}
	for i := range res.Batches {
		if res.Starts[i] != g.sorted.Starts[i] || len(res.Batches[i]) != len(g.sorted.Batches[i]) {
			return fmt.Errorf("batch %d shape diverged", i)
		}
		for j := range res.Batches[i] {
			if res.Batches[i][j] != g.sorted.Batches[i][j] {
				return fmt.Errorf("sorted key diverged at batch %d index %d", i, j)
			}
		}
	}
	return nil
}

func (g *poolGoldens) checkRank(res *RankResult) error {
	if res.Stats != g.ranked.Stats || res.DistinctTotal != g.ranked.DistinctTotal {
		return fmt.Errorf("rank stats diverged")
	}
	for i := range res.Ranks {
		for j := range res.Ranks[i] {
			if res.Ranks[i][j] != g.ranked.Ranks[i][j] {
				return fmt.Errorf("rank diverged at node %d index %d", i, j)
			}
		}
	}
	return nil
}

// TestPoolHammerMixedOps is the -race hammer: many goroutines issue mixed
// operations on one pooled handle, every result is cross-checked against
// the serial goldens, and the merged cumulative stats must equal the exact
// sum over all operations.
func TestPoolHammerMixedOps(t *testing.T) {
	t.Parallel()
	const (
		n       = 25
		workers = 8
		iters   = 3
	)
	g := newPoolGoldens(t, n)
	ctx := context.Background()
	cl, err := New(n, WithMaxConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				routed, err := cl.Route(ctx, g.msgs)
				if err == nil {
					err = g.checkRoute(routed)
				}
				if err != nil {
					errs[w] = fmt.Errorf("worker %d iter %d route: %w", w, it, err)
					return
				}
				sorted, err := cl.Sort(ctx, g.values)
				if err == nil {
					err = g.checkSort(sorted)
				}
				if err != nil {
					errs[w] = fmt.Errorf("worker %d iter %d sort: %w", w, it, err)
					return
				}
				ranked, err := cl.Rank(ctx, g.values)
				if err == nil {
					err = g.checkRank(ranked)
				}
				if err != nil {
					errs[w] = fmt.Errorf("worker %d iter %d rank: %w", w, it, err)
					return
				}
				med, stats, err := cl.Median(ctx, g.values)
				if err != nil {
					errs[w] = fmt.Errorf("worker %d iter %d median: %w", w, it, err)
					return
				}
				if med != g.median || stats.Rounds == 0 {
					errs[w] = fmt.Errorf("worker %d iter %d: median %+v, serial %+v", w, it, med, g.median)
					return
				}
				mode, err := cl.Mode(ctx, g.values)
				if err != nil {
					errs[w] = fmt.Errorf("worker %d iter %d mode: %w", w, it, err)
					return
				}
				if mode.Value != g.mode.Value || mode.Count != g.mode.Count || mode.Stats != g.mode.Stats {
					errs[w] = fmt.Errorf("worker %d iter %d: mode diverged", w, it)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The merged aggregate must account for every operation exactly once.
	const opsPerIter = 5
	cum := cl.CumulativeStats()
	if want := workers * iters * opsPerIter; cum.Operations != want {
		t.Fatalf("cumulative operations = %d, want %d", cum.Operations, want)
	}
	_, medianStats, err := Median(n, g.values)
	if err != nil {
		t.Fatal(err)
	}
	perIter := g.route.Stats.TotalWords + g.sorted.Stats.TotalWords +
		g.ranked.Stats.TotalWords + medianStats.TotalWords + g.mode.Stats.TotalWords
	if want := int64(workers*iters) * perIter; cum.TotalWords != want {
		t.Fatalf("cumulative words = %d, want %d", cum.TotalWords, want)
	}
}

// TestPoolCumulativeStatsExact pins the satellite contract: after N
// concurrent successful runs the merged CumulativeStats equal exactly N
// times the single-run stats (totals summed, maxima unchanged).
func TestPoolCumulativeStatsExact(t *testing.T) {
	t.Parallel()
	const (
		n   = 25
		ops = 12
	)
	msgs := benchRouteWorkload(n)
	single, err := Route(n, msgs)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(n, WithMaxConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	errs := make([]error, ops)
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.Route(context.Background(), msgs)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	cum := cl.CumulativeStats()
	want := CumulativeStats{
		Operations:      ops,
		Rounds:          ops * single.Stats.Rounds,
		MaxEdgeWords:    single.Stats.MaxEdgeWords,
		MaxEdgeMessages: single.Stats.MaxEdgeMessages,
		TotalMessages:   ops * single.Stats.TotalMessages,
		TotalWords:      ops * single.Stats.TotalWords,
	}
	if cum != want {
		t.Fatalf("cumulative stats %+v, want exactly %d x single run %+v", cum, ops, want)
	}
}

// TestPoolCloseDrainsInFlight starts operations, waits until at least one
// holds an engine, then Closes: in-flight operations must complete with
// golden results (Close waits for them), waiters and later calls must fail
// with ErrClosed, and Close must be idempotent.
func TestPoolCloseDrainsInFlight(t *testing.T) {
	t.Parallel()
	const n = 64
	msgs := benchRouteWorkload(n)
	want, err := Route(n, msgs)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(n, WithMaxConcurrency(2))
	if err != nil {
		t.Fatal(err)
	}

	const callers = 4
	results := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			res, err := cl.Route(context.Background(), msgs)
			if err == nil && res.Stats != want.Stats {
				err = fmt.Errorf("in-flight op survived Close with wrong stats: %+v", res.Stats)
			}
			results <- err
		}()
	}
	// Wait until at least one operation has actually checked an engine out,
	// so Close genuinely races an in-flight run.
	for {
		cl.mu.Lock()
		busy := len(cl.engines) > len(cl.idle)
		cl.mu.Unlock()
		if busy {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	completed := 0
	for i := 0; i < callers; i++ {
		err := <-results
		switch {
		case err == nil:
			completed++
		case errors.Is(err, ErrClosed):
		default:
			t.Fatal(err)
		}
	}
	if completed == 0 {
		t.Fatal("Close drained, but no in-flight operation completed — it should have waited for the checkout")
	}
	if _, err := cl.Route(context.Background(), msgs); !errors.Is(err, ErrClosed) {
		t.Fatalf("Route after Close returned %v, want ErrClosed", err)
	}
	// The aggregate of the completed operations survives Close.
	if cum := cl.CumulativeStats(); cum.Operations != completed {
		t.Fatalf("cumulative operations after Close = %d, want %d", cum.Operations, completed)
	}
}

// TestPoolCheckoutContextWhileWaiting holds the only engine of a k=1 handle
// via a direct checkout, then verifies a waiting operation fails with the
// context error instead of blocking, and that the handle works again once
// the engine is released.
func TestPoolCheckoutContextWhileWaiting(t *testing.T) {
	t.Parallel()
	const n = 16
	msgs := benchRouteWorkload(n)
	cl, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	u, err := cl.checkout(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := cl.Route(ctx, msgs); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiting Route returned %v, want context.DeadlineExceeded", err)
	}
	cl.release(u)
	if _, err := cl.Route(context.Background(), msgs); err != nil {
		t.Fatalf("Route after release: %v", err)
	}
}

// TestPoolLazyGrowth pins the construction policy: a serial caller never
// pays for more than the eager first engine, concurrent checkouts grow the
// pool on demand, and the pool never exceeds WithMaxConcurrency.
func TestPoolLazyGrowth(t *testing.T) {
	t.Parallel()
	const n = 16
	msgs := benchRouteWorkload(n)
	cl, err := New(n, WithMaxConcurrency(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got := cl.MaxConcurrency(); got != 3 {
		t.Fatalf("MaxConcurrency() = %d, want 3", got)
	}

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := cl.Route(ctx, msgs); err != nil {
			t.Fatal(err)
		}
	}
	cl.mu.Lock()
	built := len(cl.engines)
	cl.mu.Unlock()
	if built != 1 {
		t.Fatalf("serial use built %d engines, want 1", built)
	}

	// Three direct checkouts exhaust the pool and force lazy growth.
	var units []*execUnit
	for i := 0; i < 3; i++ {
		u, err := cl.checkout(ctx)
		if err != nil {
			t.Fatal(err)
		}
		units = append(units, u)
	}
	cl.mu.Lock()
	built = len(cl.engines)
	cl.mu.Unlock()
	if built != 3 {
		t.Fatalf("three concurrent checkouts built %d engines, want 3", built)
	}
	// A fourth checkout must wait (and here, time out) rather than grow past k.
	waitCtx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	if _, err := cl.checkout(waitCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("over-capacity checkout returned %v, want context.DeadlineExceeded", err)
	}
	for _, u := range units {
		cl.release(u)
	}
	if _, err := cl.Route(ctx, msgs); err != nil {
		t.Fatal(err)
	}
}

// TestPoolCloseRacesOperations is the dedicated Close-vs-operations race
// test: goroutines hammer a pooled handle while Close lands mid-stream.
// Every operation must either succeed with golden stats or fail with
// ErrClosed — nothing may deadlock, panic, or return a corrupted result.
func TestPoolCloseRacesOperations(t *testing.T) {
	t.Parallel()
	const n = 16
	msgs := benchRouteWorkload(n)
	want, err := Route(n, msgs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		cl, err := New(n, WithMaxConcurrency(2))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, 4)
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 8; i++ {
					res, err := cl.Route(context.Background(), msgs)
					if errors.Is(err, ErrClosed) {
						return
					}
					if err != nil {
						errs[g] = err
						return
					}
					if res.Stats != want.Stats {
						errs[g] = fmt.Errorf("trial %d goroutine %d op %d: stats diverged under Close race", trial, g, i)
						return
					}
				}
			}(g)
		}
		close(start)
		time.Sleep(time.Duration(trial) * 500 * time.Microsecond)
		if err := cl.Close(); err != nil {
			t.Fatalf("trial %d: Close: %v", trial, err)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestPoolValidationBeforeCheckout pins the hoisted-validation contract for
// the sort-based paths: a malformed instance or an unsupported algorithm is
// rejected without consuming an engine, even when the pool is fully checked
// out (the call returns the validation error immediately instead of
// blocking).
func TestPoolValidationBeforeCheckout(t *testing.T) {
	t.Parallel()
	const n = 8
	cl, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Occupy the only engine: a blocked pool proves rejection happens first.
	u, err := cl.checkout(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.release(u)

	ctx := context.Background()
	tooWide := make([][]int64, n+1)
	badRow := [][]int64{make([]int64, n+1)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := cl.Sort(ctx, tooWide); !errors.Is(err, ErrInvalidInstance) {
			t.Errorf("Sort(too many rows) = %v, want ErrInvalidInstance", err)
		}
		if _, err := cl.Rank(ctx, badRow); !errors.Is(err, ErrInvalidInstance) {
			t.Errorf("Rank(oversized row) = %v, want ErrInvalidInstance", err)
		}
		if _, _, err := cl.Median(ctx, badRow); !errors.Is(err, ErrInvalidInstance) {
			t.Errorf("Median(oversized row) = %v, want ErrInvalidInstance", err)
		}
		if _, err := cl.Mode(ctx, nil, WithAlgorithm(Randomized)); !errors.Is(err, ErrUnsupportedAlgorithm) {
			t.Errorf("Mode(Randomized) = %v, want ErrUnsupportedAlgorithm", err)
		}
		if _, err := cl.CountSmallKeys(ctx, make([][]int, n+1), 1); !errors.Is(err, ErrInvalidInstance) {
			t.Errorf("CountSmallKeys(too many rows) = %v, want ErrInvalidInstance", err)
		}
		if _, err := cl.CountSmallKeys(ctx, nil, 0); !errors.Is(err, ErrInvalidInstance) {
			t.Errorf("CountSmallKeys(domain 0) = %v, want ErrInvalidInstance", err)
		}
		if _, err := cl.CountSmallKeys(ctx, nil, n); !errors.Is(err, ErrInvalidInstance) {
			t.Errorf("CountSmallKeys(domain too large for n) = %v, want ErrInvalidInstance", err)
		}
		if _, err := cl.CountSmallKeys(ctx, [][]int{{-1}}, 1); !errors.Is(err, ErrInvalidInstance) {
			t.Errorf("CountSmallKeys(value out of domain) = %v, want ErrInvalidInstance", err)
		}
		if _, err := cl.Sort(ctx, nil, WithAlgorithm(NaiveDirect)); !errors.Is(err, ErrUnsupportedAlgorithm) {
			t.Errorf("Sort(NaiveDirect) = %v, want ErrUnsupportedAlgorithm", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("validation blocked on a busy pool — it must run before checkout")
	}
}

// TestPoolChaosHammer is the -race chaos hammer of the fault-injection
// subsystem: 8 workers drive 512 mixed operations against a
// WithMaxConcurrency(4) handle, with a seeded per-worker mix of clean
// operations, injected panics (with and without a retry budget), injected
// cancellations and absorbed stalls. Every failure must be a transient error
// wrapping the expected sentinel, the handle must stay usable after every
// failure (the next operations run on the same pool), every surviving result
// must be bit-identical to the serial goldens, and the handle's cumulative
// counters must account for every success, failure and retry exactly.
func TestPoolChaosHammer(t *testing.T) {
	t.Parallel()
	const (
		n       = 16
		workers = 8
		iters   = 64
	)
	g := newPoolGoldens(t, n)
	ctx := context.Background()
	cl, err := New(n, WithMaxConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var succeeded, failed, retried atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			for it := 0; it < iters; it++ {
				switch rng.Intn(6) {
				case 0: // clean route
					res, err := cl.Route(ctx, g.msgs)
					if err == nil {
						err = g.checkRoute(res)
					}
					if err != nil {
						errs[w] = fmt.Errorf("worker %d iter %d clean route: %w", w, it, err)
						return
					}
					succeeded.Add(1)
				case 1: // clean sort
					res, err := cl.Sort(ctx, g.values)
					if err == nil {
						err = g.checkSort(res)
					}
					if err != nil {
						errs[w] = fmt.Errorf("worker %d iter %d clean sort: %w", w, it, err)
						return
					}
					succeeded.Add(1)
				case 2: // injected panic, no retry budget: must fail transient
					_, err := cl.Route(ctx, g.msgs, WithInjectedPanic(rng.Intn(n), rng.Intn(3)))
					if err == nil {
						errs[w] = fmt.Errorf("worker %d iter %d: injected panic did not surface", w, it)
						return
					}
					if !errors.Is(err, ErrTransient) || !errors.Is(err, ErrFaultInjected) {
						errs[w] = fmt.Errorf("worker %d iter %d: panic error %v must wrap ErrTransient and ErrFaultInjected", w, it, err)
						return
					}
					failed.Add(1)
				case 3: // injected panic, one retry: must recover bit-identical
					res, err := cl.Route(ctx, g.msgs, WithInjectedPanic(rng.Intn(n), rng.Intn(3)), WithRetry(1, 0))
					if err == nil {
						err = g.checkRoute(res)
					}
					if err != nil {
						errs[w] = fmt.Errorf("worker %d iter %d retried panic route: %w", w, it, err)
						return
					}
					succeeded.Add(1)
					retried.Add(1)
				case 4: // injected cancel, one retry: must recover bit-identical
					res, err := cl.Sort(ctx, g.values, WithInjectedCancel(1), WithRetry(1, 0))
					if err == nil {
						err = g.checkSort(res)
					}
					if err != nil {
						errs[w] = fmt.Errorf("worker %d iter %d retried cancel sort: %w", w, it, err)
						return
					}
					succeeded.Add(1)
					retried.Add(1)
				case 5: // short stall, no deadline armed: absorbed, bit-identical
					res, err := cl.Sort(ctx, g.values, WithInjectedStall(rng.Intn(n), 1, 200*time.Microsecond))
					if err == nil {
						err = g.checkSort(res)
					}
					if err != nil {
						errs[w] = fmt.Errorf("worker %d iter %d stalled sort: %w", w, it, err)
						return
					}
					succeeded.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := succeeded.Load() + failed.Load(); got != workers*iters {
		t.Fatalf("accounted for %d operations, want %d", got, workers*iters)
	}
	// The cumulative counters must agree exactly with what the workers saw:
	// Operations counts successes only, FailedOperations the final failures,
	// Retries every transparent re-run (one per recovered injected fault).
	cum := cl.CumulativeStats()
	if int64(cum.Operations) != succeeded.Load() {
		t.Fatalf("cumulative operations = %d, want %d", cum.Operations, succeeded.Load())
	}
	if cum.FailedOperations != failed.Load() {
		t.Fatalf("cumulative failed operations = %d, want %d", cum.FailedOperations, failed.Load())
	}
	if cum.Retries != retried.Load() {
		t.Fatalf("cumulative retries = %d, want %d", cum.Retries, retried.Load())
	}
	// The handle survived 512 chaotic operations; Close must still drain
	// cleanly (the deferred Close would catch a failure, but assert the
	// post-chaos handle also still runs a clean op first).
	res, err := cl.Route(ctx, g.msgs)
	if err != nil {
		t.Fatalf("clean route after chaos: %v", err)
	}
	if err := g.checkRoute(res); err != nil {
		t.Fatalf("post-chaos route diverged: %v", err)
	}
}

// TestInjectedPanicNonSquareN pins fault injection on the multiplexed
// routing path: non-square n runs Theorem 3.7's V1/V2 decomposition through
// the Mux, where an injected panic fires inside the physical exchange driven
// by a Mux instance goroutine. Before the Mux fail-fast fix this deadlocked
// the whole run (the panic was downgraded to a graceful instance error and
// peers waited forever at the engine barrier); it must instead fail fast as
// a transient ErrFaultInjected, recover under WithRetry bit-identical to the
// golden, and leave the handle usable.
func TestInjectedPanicNonSquareN(t *testing.T) {
	t.Parallel()
	const n = 32 // not a perfect square: routing multiplexes sub-instances
	g := newPoolGoldens(t, n)
	ctx := context.Background()
	cl, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := cl.Route(ctx, g.msgs, WithInjectedPanic(n/4, 2))
		if err == nil {
			t.Error("injected panic on the mux path did not surface")
			return
		}
		if !errors.Is(err, ErrTransient) || !errors.Is(err, ErrFaultInjected) {
			t.Errorf("mux-path panic error %v must wrap ErrTransient and ErrFaultInjected", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("injected panic on the mux path deadlocked the run")
	}

	res, err := cl.Route(ctx, g.msgs, WithInjectedPanic(n/4, 2), WithRetry(1, 0))
	if err != nil {
		t.Fatalf("retried mux-path panic did not recover: %v", err)
	}
	if err := g.checkRoute(res); err != nil {
		t.Fatalf("recovered mux-path route diverged from golden: %v", err)
	}
}

// FuzzPoolCancelAtRandomRound cancels Route operations at fuzzer-chosen
// rounds, with and without a retry budget. Invariants: a cancellation that
// fires surfaces as a deterministic transient error (two runs, identical
// error text) naming the round; a retry recovers it bit-identical to the
// golden; a cancellation scheduled past the last round never fires and the
// operation succeeds; and the handle stays usable afterwards.
func FuzzPoolCancelAtRandomRound(f *testing.F) {
	f.Add(uint8(0), false)
	f.Add(uint8(1), false)
	f.Add(uint8(1), true)
	f.Add(uint8(3), true)
	f.Add(uint8(200), false)
	const n = 8
	msgs := benchRouteWorkload(n)
	golden, err := Route(n, msgs)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, round uint8, retry bool) {
		ctx := context.Background()
		cl, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		opts := []Option{WithInjectedCancel(int(round))}
		if retry {
			opts = append(opts, WithRetry(1, 0))
		}
		res, err := cl.Route(ctx, msgs, opts...)
		if err != nil {
			if retry {
				t.Fatalf("round %d: retry must recover an injected cancellation, got %v", round, err)
			}
			if !errors.Is(err, ErrTransient) || !errors.Is(err, ErrFaultInjected) {
				t.Fatalf("round %d: error %v must wrap ErrTransient and ErrFaultInjected", round, err)
			}
			_, err2 := cl.Route(ctx, msgs, opts...)
			if err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("round %d: cancellation not deterministic: %q vs %q", round, err, err2)
			}
		} else if res.Stats != golden.Stats {
			t.Fatalf("round %d: surviving run diverged from golden: %+v vs %+v", round, res.Stats, golden.Stats)
		}
		// The handle must stay usable after the injected failure.
		clean, err := cl.Route(ctx, msgs)
		if err != nil {
			t.Fatalf("round %d: clean route after injection: %v", round, err)
		}
		if clean.Stats != golden.Stats {
			t.Fatalf("round %d: post-injection route diverged from golden", round)
		}
	})
}
