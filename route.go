package congestedclique

import (
	"context"
	"fmt"
)

// RouteResult is the outcome of one Information Distribution Task execution.
type RouteResult struct {
	// Delivered[i] lists the messages node i received, sorted by
	// (Src, Dst, Seq).
	Delivered [][]Message
	// Strategy is the delivery strategy the demand-aware planner selected.
	// It is set only when the operation ran under AlgorithmAuto; under an
	// explicitly chosen algorithm it is the zero value ("unplanned").
	Strategy RouteStrategy
	// Stats describes the execution cost.
	Stats Stats
}

// Route solves the Information Distribution Task (Problem 3.1) on a clique
// of n nodes. It is the one-shot convenience form of Clique.Route: it builds
// a throwaway session handle, runs the single operation with a background
// context and closes the handle again; results and statistics are identical
// to the session path. Services issuing many operations should hold a
// Clique handle instead.
func Route(n int, msgs [][]Message, opts ...Option) (*RouteResult, error) {
	// Validate the instance shape before building (and immediately closing)
	// an engine for it — malformed inputs never pay construction.
	if err := validateNodeCount(n); err != nil {
		return nil, err
	}
	if err := validateRoute(n, msgs); err != nil {
		return nil, err
	}
	c, err := New(n, opts...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.routeValidated(context.Background(), msgs)
}

// NewUniformMessages is a convenience constructor: it labels payloads[i][j]
// as message j of node i destined to dsts[i][j], filling in Src and Seq.
func NewUniformMessages(dsts [][]int, payloads [][]int64) ([][]Message, error) {
	if len(dsts) != len(payloads) {
		return nil, fmt.Errorf("%w: %d destination rows but %d payload rows", ErrInvalidInstance, len(dsts), len(payloads))
	}
	msgs := make([][]Message, len(dsts))
	for i := range dsts {
		if len(dsts[i]) != len(payloads[i]) {
			return nil, fmt.Errorf("%w: node %d has %d destinations but %d payloads", ErrInvalidInstance, i, len(dsts[i]), len(payloads[i]))
		}
		row := make([]Message, len(dsts[i]))
		for j := range dsts[i] {
			row[j] = Message{Src: i, Dst: dsts[i][j], Seq: j, Payload: payloads[i][j]}
		}
		msgs[i] = row
	}
	return msgs, nil
}
