package congestedclique

import (
	"fmt"

	"congestedclique/internal/baseline"
	"congestedclique/internal/clique"
	"congestedclique/internal/core"
)

// RouteResult is the outcome of one Information Distribution Task execution.
type RouteResult struct {
	// Delivered[i] lists the messages node i received, sorted by
	// (Src, Dst, Seq).
	Delivered [][]Message
	// Stats describes the execution cost.
	Stats Stats
}

// Route solves the Information Distribution Task (Problem 3.1) on a clique of
// n nodes: msgs[i] are the messages originating at node i (at most n per
// node, each destined to a node in [0, n)), and the result lists what every
// node received. The default algorithm is the paper's deterministic 16-round
// solution (Theorem 3.7); see WithAlgorithm for the 12-round low-computation
// variant (Theorem 5.4) and the comparison baselines.
func Route(n int, msgs [][]Message, opts ...Option) (*RouteResult, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := validateRoutingInstance(n, msgs); err != nil {
		return nil, err
	}

	inputs := make([][]core.Message, n)
	for i := 0; i < n && i < len(msgs); i++ {
		for _, m := range msgs[i] {
			inputs[i] = append(inputs[i], toCoreMessage(m))
		}
	}

	nw, err := buildNetwork(n, cfg)
	if err != nil {
		return nil, err
	}
	outputs := make([][]core.Message, n)
	runErr := nw.Run(func(nd *clique.Node) error {
		var (
			out  []core.Message
			rErr error
		)
		switch cfg.algorithm {
		case Deterministic:
			out, rErr = core.Route(nd, inputs[nd.ID()])
		case LowCompute:
			out, rErr = core.LowComputeRoute(nd, inputs[nd.ID()])
		case Randomized:
			out, rErr = baseline.RandomizedRoute(nd, inputs[nd.ID()], cfg.seed)
		case NaiveDirect:
			out, rErr = baseline.NaiveDirectRoute(nd, inputs[nd.ID()])
		default:
			rErr = fmt.Errorf("congestedclique: unsupported algorithm %v", cfg.algorithm)
		}
		if rErr != nil {
			return rErr
		}
		outputs[nd.ID()] = out
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}

	res := &RouteResult{Delivered: make([][]Message, n), Stats: statsFromMetrics(nw.Metrics())}
	for i, out := range outputs {
		for _, m := range out {
			res.Delivered[i] = append(res.Delivered[i], fromCoreMessage(m))
		}
	}
	return res, nil
}

// validateRoutingInstance checks the Problem 3.1 preconditions.
func validateRoutingInstance(n int, msgs [][]Message) error {
	if n <= 0 {
		return fmt.Errorf("%w: need at least one node, got %d", ErrInvalidInstance, n)
	}
	if len(msgs) > n {
		return fmt.Errorf("%w: %d input slots for %d nodes", ErrInvalidInstance, len(msgs), n)
	}
	recv := make([]int, n)
	for src, ms := range msgs {
		if len(ms) > n {
			return fmt.Errorf("%w: node %d sends %d messages, Problem 3.1 allows at most n=%d", ErrInvalidInstance, src, len(ms), n)
		}
		seen := make(map[int]bool, len(ms))
		for _, m := range ms {
			if m.Src != src {
				return fmt.Errorf("%w: message (%d->%d #%d) listed under node %d", ErrInvalidInstance, m.Src, m.Dst, m.Seq, src)
			}
			if m.Dst < 0 || m.Dst >= n {
				return fmt.Errorf("%w: message destination %d out of range [0,%d)", ErrInvalidInstance, m.Dst, n)
			}
			if seen[m.Seq] {
				return fmt.Errorf("%w: node %d has two messages with sequence number %d", ErrInvalidInstance, src, m.Seq)
			}
			seen[m.Seq] = true
			recv[m.Dst]++
		}
	}
	for dst, r := range recv {
		if r > n {
			return fmt.Errorf("%w: node %d would receive %d messages, Problem 3.1 allows at most n=%d", ErrInvalidInstance, dst, r, n)
		}
	}
	return nil
}

// NewUniformMessages is a convenience constructor: it labels payloads[i][j]
// as message j of node i destined to dsts[i][j], filling in Src and Seq.
func NewUniformMessages(dsts [][]int, payloads [][]int64) ([][]Message, error) {
	if len(dsts) != len(payloads) {
		return nil, fmt.Errorf("%w: %d destination rows but %d payload rows", ErrInvalidInstance, len(dsts), len(payloads))
	}
	msgs := make([][]Message, len(dsts))
	for i := range dsts {
		if len(dsts[i]) != len(payloads[i]) {
			return nil, fmt.Errorf("%w: node %d has %d destinations but %d payloads", ErrInvalidInstance, i, len(dsts[i]), len(payloads[i]))
		}
		for j := range dsts[i] {
			msgs[i] = append(msgs[i], Message{Src: i, Dst: dsts[i][j], Seq: j, Payload: payloads[i][j]})
		}
	}
	return msgs, nil
}
