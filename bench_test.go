package congestedclique

// This file regenerates, as Go benchmarks, every experiment table recorded in
// EXPERIMENTS.md (the paper has no empirical tables or figures of its own —
// see DESIGN.md §1 — so the "tables" are the paper's claimed round, bandwidth
// and computation bounds). Each benchmark reports the quantities the paper's
// bounds are stated in as custom metrics:
//
//	rounds/op          synchronous communication rounds of one execution
//	edge-words/round   maximum words on any directed edge in any round
//	steps/node         maximum self-reported local computation (E3 only)
//
// Run with:  go test -bench=. -benchmem
//
// Every measured execution is verified (exact delivery, sorted output, exact
// histogram) before its numbers are reported.

import (
	"fmt"
	"testing"

	"congestedclique/internal/experiments"
	"congestedclique/internal/workload"
)

// benchSizes are the perfect-square clique sizes exercised by default; the
// non-square sizes exercise the V1/V2/V3 construction of Theorem 3.7.
var (
	benchSizes          = []int{16, 64, 144}
	benchNonSquareSizes = []int{20, 90, 200}
)

func reportRouting(b *testing.B, m *experiments.Measurement) {
	b.Helper()
	b.ReportMetric(float64(m.Rounds), "rounds/op")
	b.ReportMetric(float64(m.MaxEdgeWords), "edge-words/round")
	if m.StepsPerNode > 0 {
		b.ReportMetric(float64(m.StepsPerNode), "steps/node")
	}
}

// BenchmarkE1DeterministicRouting regenerates experiment E1 (Theorem 3.7):
// the deterministic Information Distribution Task in at most 16 rounds, for
// square and non-square n and several destination patterns.
func BenchmarkE1DeterministicRouting(b *testing.B) {
	patterns := []workload.RoutingPattern{workload.RoutingUniform, workload.RoutingSkewed, workload.RoutingSetAdversarial}
	sizes := append(append([]int{}, benchSizes...), benchNonSquareSizes...)
	for _, n := range sizes {
		for _, p := range patterns {
			b.Run(fmt.Sprintf("n=%d/%s", n, p), func(b *testing.B) {
				var last *experiments.Measurement
				for i := 0; i < b.N; i++ {
					m, err := experiments.MeasureRouting(n, n, p, "deterministic", int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					if m.Rounds > 16 {
						b.Fatalf("measured %d rounds, Theorem 3.7 claims <= 16", m.Rounds)
					}
					last = m
				}
				reportRouting(b, last)
			})
		}
	}
}

// BenchmarkE2DeterministicSorting regenerates experiment E2 (Theorem 4.5):
// sorting n keys per node in at most 37 rounds.
func BenchmarkE2DeterministicSorting(b *testing.B) {
	dists := []workload.KeyDistribution{workload.KeysUniform, workload.KeysDuplicateHeavy, workload.KeysPreSorted}
	sizes := append(append([]int{}, benchSizes...), benchNonSquareSizes[0])
	for _, n := range sizes {
		for _, d := range dists {
			b.Run(fmt.Sprintf("n=%d/%s", n, d), func(b *testing.B) {
				var last *experiments.Measurement
				for i := 0; i < b.N; i++ {
					m, err := experiments.MeasureSorting(n, n, d, "deterministic", int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					if m.Rounds > 37 {
						b.Fatalf("measured %d rounds, Theorem 4.5 claims <= 37", m.Rounds)
					}
					last = m
				}
				reportRouting(b, last)
			})
		}
	}
}

// BenchmarkE3LowComputeRouting regenerates experiment E3 (Theorem 5.4): the
// 12-round routing variant with near-linear self-reported computation.
func BenchmarkE3LowComputeRouting(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var last *experiments.Measurement
			for i := 0; i < b.N; i++ {
				m, err := experiments.MeasureRouting(n, n, workload.RoutingUniform, "low-compute", int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				if m.Rounds > 12 {
					b.Fatalf("measured %d rounds, Theorem 5.4 claims <= 12", m.Rounds)
				}
				last = m
			}
			reportRouting(b, last)
			b.ReportMetric(float64(last.StepsPerNode)/float64(n), "steps/node/n")
		})
	}
}

// BenchmarkE4RankSelectMode regenerates experiment E4 (Corollary 4.6): the
// rank-in-union variant, selection and mode in a constant number of rounds.
func BenchmarkE4RankSelectMode(b *testing.B) {
	for _, n := range []int{16, 64, 144} {
		b.Run(fmt.Sprintf("rank/n=%d", n), func(b *testing.B) {
			var last *experiments.Measurement
			for i := 0; i < b.N; i++ {
				m, err := experiments.MeasureRank(n, n, workload.KeysDuplicateHeavy, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			reportRouting(b, last)
		})
		b.Run(fmt.Sprintf("select/n=%d", n), func(b *testing.B) {
			var last *experiments.Measurement
			for i := 0; i < b.N; i++ {
				m, err := experiments.MeasureSelect(n, n, workload.KeysUniform, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			reportRouting(b, last)
		})
		b.Run(fmt.Sprintf("mode/n=%d", n), func(b *testing.B) {
			var last *experiments.Measurement
			for i := 0; i < b.N; i++ {
				m, err := experiments.MeasureMode(n, n, workload.KeysDuplicateHeavy, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			reportRouting(b, last)
		})
	}
}

// BenchmarkE5RandomizedComparison regenerates experiment E5: deterministic vs
// the randomized prior-work stand-ins vs naive direct delivery.
func BenchmarkE5RandomizedComparison(b *testing.B) {
	for _, n := range []int{64, 144} {
		for _, p := range []workload.RoutingPattern{workload.RoutingUniform, workload.RoutingSkewed} {
			for _, alg := range experiments.RoutingAlgorithms() {
				b.Run(fmt.Sprintf("routing/n=%d/%s/%s", n, p, alg), func(b *testing.B) {
					var last *experiments.Measurement
					for i := 0; i < b.N; i++ {
						m, err := experiments.MeasureRouting(n, n, p, alg, int64(i+1))
						if err != nil {
							b.Fatal(err)
						}
						last = m
					}
					reportRouting(b, last)
				})
			}
		}
		for _, alg := range []string{"deterministic", "randomized"} {
			b.Run(fmt.Sprintf("sorting/n=%d/%s", n, alg), func(b *testing.B) {
				var last *experiments.Measurement
				for i := 0; i < b.N; i++ {
					m, err := experiments.MeasureSorting(n, n, workload.KeysUniform, alg, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					last = m
				}
				reportRouting(b, last)
			})
		}
	}
}

// BenchmarkE6SmallKeys regenerates experiment E6 (Section 6.3): counting keys
// from a small domain in two rounds of single-word messages.
func BenchmarkE6SmallKeys(b *testing.B) {
	for _, tc := range []struct{ n, domain int }{{64, 1}, {256, 3}, {576, 5}} {
		b.Run(fmt.Sprintf("n=%d/K=%d", tc.n, tc.domain), func(b *testing.B) {
			var last *experiments.Measurement
			for i := 0; i < b.N; i++ {
				m, err := experiments.MeasureSmallKeys(tc.n, tc.n, tc.domain, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				if m.Rounds != 2 {
					b.Fatalf("measured %d rounds, Section 6.3 describes 2", m.Rounds)
				}
				last = m
			}
			reportRouting(b, last)
		})
	}
}

// BenchmarkE7BandwidthCompliance regenerates experiment E7: the maximum
// per-edge load of every algorithm stays a constant number of words as n
// grows (the O(log n) bits-per-edge model).
func BenchmarkE7BandwidthCompliance(b *testing.B) {
	for _, n := range benchSizes {
		for _, alg := range []string{"deterministic", "low-compute"} {
			b.Run(fmt.Sprintf("%s/n=%d", alg, n), func(b *testing.B) {
				var last *experiments.Measurement
				for i := 0; i < b.N; i++ {
					m, err := experiments.MeasureRouting(n, n, workload.RoutingSetAdversarial, alg, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					if m.MaxEdgeWords > 64 {
						b.Fatalf("per-edge load %d words is not a small constant", m.MaxEdgeWords)
					}
					last = m
				}
				reportRouting(b, last)
			})
		}
	}
}

// BenchmarkE8ColoringAblation regenerates experiment E8: the cost of the
// exact König coloring versus the greedy 2Δ-1 coloring of footnote 3, both on
// the compact demand-matrix representation and on the fully expanded
// multigraph.
func BenchmarkE8ColoringAblation(b *testing.B) {
	for _, tc := range []struct{ size, degree int }{{16, 256}, {32, 1024}, {32, 4096}} {
		for _, method := range []string{"exact", "greedy", "exact-expanded"} {
			b.Run(fmt.Sprintf("%dx%d-deg%d/%s", tc.size, tc.size, tc.degree, method), func(b *testing.B) {
				var colors int
				for i := 0; i < b.N; i++ {
					m, err := experiments.MeasureColoring(tc.size, tc.degree, method, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					colors = m.Colors
				}
				b.ReportMetric(float64(colors), "colors")
			})
		}
	}
}
