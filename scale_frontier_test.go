//go:build !race

// The scale-out frontier guard runs at n=16384 and pins the sparse path's
// memory discipline with a hard allocation budget, so it is excluded from
// race builds (the race runtime's shadow memory would dominate the budget);
// the non-race tier-1 run and the CI large-n smoke job execute it.

package congestedclique

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"congestedclique/internal/core"
	"congestedclique/internal/verify"
	"congestedclique/internal/workload"
)

// readVmHWM returns the process's peak resident set size in bytes from
// /proc/self/status, or 0 when unavailable (non-Linux).
func readVmHWM() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// TestScaleFrontier16k is the tentpole acceptance pin: full Route and Sort
// protocol runs complete at n=16384 on the sparse path, outputs verify
// against the paper's correctness conditions, and the whole exercise stays
// within a 256 MiB allocation budget — a dense O(n²) representation would
// need gigabytes (16384² words is 2 GiB for a single n×n matrix), so the
// budget fails loudly if a quadratic structure sneaks back in.
func TestScaleFrontier16k(t *testing.T) {
	const n = 16384
	ri, err := workload.ScaleSparseRoute(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	msgs := instanceMessages(ri)
	values := workload.ScalePresortedValues(n)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	routeRes, err := Route(n, msgs, WithAlgorithm(AlgorithmAuto), WithSparsePath())
	if err != nil {
		t.Fatalf("route at n=%d: %v", n, err)
	}
	sortRes, err := Sort(n, values, WithAlgorithm(AlgorithmAuto), WithSparsePath())
	if err != nil {
		t.Fatalf("sort at n=%d: %v", n, err)
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	allocated := int64(after.TotalAlloc - before.TotalAlloc)
	const budget = 256 << 20
	if allocated > budget {
		t.Errorf("route+sort at n=%d allocated %d MiB, budget %d MiB — a quadratic structure is back on the sparse path",
			n, allocated>>20, int64(budget)>>20)
	}
	t.Logf("n=%d: route %v (%d rounds), sort %v (%d rounds), allocated %d MiB, peak RSS %d MiB",
		n, routeRes.Strategy, routeRes.Stats.Rounds, sortRes.Strategy, sortRes.Stats.Rounds,
		allocated>>20, readVmHWM()>>20)

	if routeRes.Strategy != StrategyDirect {
		t.Errorf("route strategy %v, want direct", routeRes.Strategy)
	}
	if sortRes.Strategy != SortStrategyPresorted {
		t.Errorf("sort strategy %v, want presorted", sortRes.Strategy)
	}

	// Full paper-invariant verification of both outputs.
	sent := make([][]core.Message, n)
	delivered := make([][]core.Message, n)
	for i := 0; i < n; i++ {
		for _, m := range msgs[i] {
			sent[i] = append(sent[i], core.Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: int64(m.Payload)})
		}
		for _, m := range routeRes.Delivered[i] {
			delivered[i] = append(delivered[i], core.Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: int64(m.Payload)})
		}
	}
	if err := verify.Routing(sent, delivered); err != nil {
		t.Errorf("route output: %v", err)
	}
	input := make([][]core.Key, n)
	results := make([]*core.SortResult, n)
	for i := 0; i < n; i++ {
		for j, v := range values[i] {
			input[i] = append(input[i], core.Key{Value: v, Origin: i, Seq: j})
		}
		res := &core.SortResult{Start: sortRes.Starts[i], Total: sortRes.Total}
		for _, k := range sortRes.Batches[i] {
			res.Batch = append(res.Batch, core.Key{Value: k.Value, Origin: k.Origin, Seq: k.Seq})
		}
		results[i] = res
	}
	if err := verify.Sorting(input, results); err != nil {
		t.Errorf("sort output: %v", err)
	}
}
