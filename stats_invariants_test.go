package congestedclique

// Golden tests pinning the model accounting of the deterministic protocols.
// The golden values were captured from the per-parcel implementation that
// predates the flat-frame protocol layer: batching logical messages into
// frames must never change Rounds, MaxEdgeWords, MaxEdgeMessages or the
// traffic totals, because those are the quantities the paper's bounds are
// stated in. If an optimisation changes any number below, it changed the
// algorithm, not just its encoding.

import (
	"context"
	"fmt"
	"testing"
)

type statsGolden struct {
	n           int
	routeRounds int
	routeMEW    int // MaxEdgeWords
	routeMEM    int // MaxEdgeMessages
	routeMsgs   int64
	routeWords  int64
	sortRounds  int
	sortMEW     int
	sortMsgs    int64
	sortWords   int64
	lcRounds    int // LowCompute routing rounds
	lcMEW       int
}

// statsGoldens: deterministic full-load workloads (benchRouteWorkload and
// benchSortWorkload) measured on the pre-frame implementation.
var statsGoldens = []statsGolden{
	{n: 4, routeRounds: 4, routeMEW: 16, routeMEM: 4, routeMsgs: 160, routeWords: 704, sortRounds: 10, sortMEW: 18, sortMsgs: 336, sortWords: 1494, lcRounds: 4, lcMEW: 16},
	{n: 16, routeRounds: 16, routeMEW: 6, routeMEM: 1, routeMsgs: 3904, routeWords: 18560, sortRounds: 37, sortMEW: 18, sortMsgs: 6422, sortWords: 38925, lcRounds: 12, lcMEW: 6},
	{n: 25, routeRounds: 16, routeMEW: 6, routeMEM: 1, routeMsgs: 9500, routeWords: 45250, sortRounds: 37, sortMEW: 24, sortMsgs: 15375, sortWords: 93804, lcRounds: 12, lcMEW: 6},
	{n: 64, routeRounds: 16, routeMEW: 6, routeMEM: 1, routeMsgs: 61952, routeWords: 295936, sortRounds: 37, sortMEW: 32, sortMsgs: 97501, sortWords: 601804, lcRounds: 12, lcMEW: 6},
	{n: 90, routeRounds: 16, routeMEW: 14, routeMEM: 2, routeMsgs: 160380, routeWords: 884844, sortRounds: 37, sortMEW: 32, sortMsgs: 224799, sortWords: 1491182, lcRounds: 16, lcMEW: 14},
	{n: 144, routeRounds: 16, routeMEW: 6, routeMEM: 1, routeMsgs: 312768, routeWords: 1496448, sortRounds: 37, sortMEW: 40, sortMsgs: 487214, sortWords: 3025743, lcRounds: 12, lcMEW: 6},
	{n: 200, routeRounds: 16, routeMEW: 14, routeMEM: 2, routeMsgs: 863440, routeWords: 4712304, sortRounds: 37, sortMEW: 40, sortMsgs: 1197845, sortWords: 7893109, lcRounds: 16, lcMEW: 14},
	{n: 256, routeRounds: 16, routeMEW: 6, routeMEM: 1, routeMsgs: 987136, routeWords: 4726784, sortRounds: 37, sortMEW: 44, sortMsgs: 1531185, sortWords: 9538402, lcRounds: 12, lcMEW: 6},
}

func TestRouteStatsInvariants(t *testing.T) {
	for _, g := range statsGoldens {
		g := g
		t.Run(fmt.Sprintf("n=%d", g.n), func(t *testing.T) {
			t.Parallel()
			res, err := Route(g.n, benchRouteWorkload(g.n))
			if err != nil {
				t.Fatal(err)
			}
			s := res.Stats
			if s.Rounds != g.routeRounds {
				t.Errorf("Rounds = %d, golden %d", s.Rounds, g.routeRounds)
			}
			if s.MaxEdgeWords != g.routeMEW {
				t.Errorf("MaxEdgeWords = %d, golden %d", s.MaxEdgeWords, g.routeMEW)
			}
			if s.MaxEdgeMessages != g.routeMEM {
				t.Errorf("MaxEdgeMessages = %d, golden %d", s.MaxEdgeMessages, g.routeMEM)
			}
			if s.TotalMessages != g.routeMsgs {
				t.Errorf("TotalMessages = %d, golden %d", s.TotalMessages, g.routeMsgs)
			}
			if s.TotalWords != g.routeWords {
				t.Errorf("TotalWords = %d, golden %d", s.TotalWords, g.routeWords)
			}
		})
	}
}

func TestSortStatsInvariants(t *testing.T) {
	for _, g := range statsGoldens {
		g := g
		t.Run(fmt.Sprintf("n=%d", g.n), func(t *testing.T) {
			t.Parallel()
			res, err := Sort(g.n, benchSortWorkload(g.n))
			if err != nil {
				t.Fatal(err)
			}
			s := res.Stats
			if s.Rounds != g.sortRounds {
				t.Errorf("Rounds = %d, golden %d", s.Rounds, g.sortRounds)
			}
			if s.MaxEdgeWords != g.sortMEW {
				t.Errorf("MaxEdgeWords = %d, golden %d", s.MaxEdgeWords, g.sortMEW)
			}
			if s.TotalMessages != g.sortMsgs {
				t.Errorf("TotalMessages = %d, golden %d", s.TotalMessages, g.sortMsgs)
			}
			if s.TotalWords != g.sortWords {
				t.Errorf("TotalWords = %d, golden %d", s.TotalWords, g.sortWords)
			}
		})
	}
}

// TestSessionStatsInvariants runs the same golden workloads through one
// reused session handle per size — Route, Sort and LowCompute Route back to
// back, twice — and holds every run to the identical golden numbers. This is
// the bit-for-bit guarantee that engine reuse (arena retention, per-run
// cache scoping, metric resets) is observationally equivalent to a fresh
// network per call.
func TestSessionStatsInvariants(t *testing.T) {
	ctx := context.Background()
	for _, g := range statsGoldens {
		g := g
		t.Run(fmt.Sprintf("n=%d", g.n), func(t *testing.T) {
			t.Parallel()
			cl, err := New(g.n)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			routeMsgs := benchRouteWorkload(g.n)
			sortValues := benchSortWorkload(g.n)
			for pass := 0; pass < 2; pass++ {
				res, err := cl.Route(ctx, routeMsgs)
				if err != nil {
					t.Fatalf("pass %d: %v", pass, err)
				}
				s := res.Stats
				if s.Rounds != g.routeRounds || s.MaxEdgeWords != g.routeMEW || s.MaxEdgeMessages != g.routeMEM ||
					s.TotalMessages != g.routeMsgs || s.TotalWords != g.routeWords {
					t.Errorf("pass %d: session Route stats %+v diverge from goldens %+v", pass, s, g)
				}
				sorted, err := cl.Sort(ctx, sortValues)
				if err != nil {
					t.Fatalf("pass %d: %v", pass, err)
				}
				ss := sorted.Stats
				if ss.Rounds != g.sortRounds || ss.MaxEdgeWords != g.sortMEW ||
					ss.TotalMessages != g.sortMsgs || ss.TotalWords != g.sortWords {
					t.Errorf("pass %d: session Sort stats %+v diverge from goldens %+v", pass, ss, g)
				}
				lc, err := cl.Route(ctx, routeMsgs, WithAlgorithm(LowCompute))
				if err != nil {
					t.Fatalf("pass %d: %v", pass, err)
				}
				if lc.Stats.Rounds != g.lcRounds || lc.Stats.MaxEdgeWords != g.lcMEW {
					t.Errorf("pass %d: session LowCompute stats %+v diverge from goldens %+v", pass, lc.Stats, g)
				}
			}
		})
	}
}

func TestLowComputeStatsInvariants(t *testing.T) {
	for _, g := range statsGoldens {
		g := g
		t.Run(fmt.Sprintf("n=%d", g.n), func(t *testing.T) {
			t.Parallel()
			res, err := Route(g.n, benchRouteWorkload(g.n), WithAlgorithm(LowCompute))
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Rounds != g.lcRounds {
				t.Errorf("Rounds = %d, golden %d", res.Stats.Rounds, g.lcRounds)
			}
			if res.Stats.MaxEdgeWords != g.lcMEW {
				t.Errorf("MaxEdgeWords = %d, golden %d", res.Stats.MaxEdgeWords, g.lcMEW)
			}
		})
	}
}
