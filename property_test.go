package congestedclique

// Property-based oracle harness: generated instances across the demand
// shapes the planner distinguishes (sparse, skewed, duplicate-heavy, ragged,
// one-to-many), checked directly against the paper's invariants rather than
// against goldens — exactly-once delivery (Problem 3.1), per-edge words a
// small constant per round (the O(log n)-bit bandwidth model), round counts
// within the theorem bounds (16 for routing, Theorem 3.7; 37 for sorting,
// Theorem 4.5), and the globally sorted contiguous balanced batches with
// footnote-5 tie-breaking (Value, Origin, Seq). Small sizes sweep every
// shape on both the dense and sparse handles; n=4096 runs the sparse-served
// shapes through the step executors.

import (
	"fmt"
	"math/rand"
	"testing"

	"congestedclique/internal/core"
	"congestedclique/internal/verify"
)

// routeShapes are the generated routing demand families. Every generator
// respects the Problem 3.1 shape (at most n messages per source and sink).
var routeShapes = []struct {
	name   string
	sparse bool // cheap enough (O(n) messages) for the n=4096 sweep
	gen    func(n int, rng *rand.Rand) [][]Message
}{
	{"sparse", true, func(n int, rng *rand.Rand) [][]Message {
		msgs := make([][]Message, n)
		for src := 0; src < n; src++ {
			for k := rng.Intn(3); k > 0; k-- {
				addCapped(msgs, nil, src, rng.Intn(n), rng)
			}
		}
		return msgs
	}},
	{"skewed", false, func(n int, rng *rand.Rand) [][]Message {
		msgs := make([][]Message, n)
		recv := make([]int, n)
		sinks := 1 + n/8
		for src := 0; src < n; src++ {
			for k := 0; k < n/2; k++ {
				addCapped(msgs, recv, src, rng.Intn(sinks), rng)
			}
		}
		return msgs
	}},
	{"ragged", true, func(n int, rng *rand.Rand) [][]Message {
		msgs := make([][]Message, 1+rng.Intn(n)) // rows beyond stay empty
		for src := range msgs {
			if src%3 == 0 {
				continue // inactive rows interleaved
			}
			for k := rng.Intn(4); k > 0; k-- {
				addCapped(msgs, nil, src, rng.Intn(len(msgs)), rng)
			}
		}
		return msgs
	}},
	{"one-to-many", true, func(n int, rng *rand.Rand) [][]Message {
		msgs := make([][]Message, n)
		recv := make([]int, n)
		sources := 1 + rng.Intn(min(n/8+1, 4))
		for src := 0; src < sources; src++ {
			for k := 0; k < 5+rng.Intn(20); k++ {
				addCapped(msgs, recv, src, rng.Intn(1+n/16), rng)
			}
		}
		return msgs
	}},
}

// addCapped appends one message unless it would exceed the Problem 3.1
// per-source or per-sink load bound. recv may be nil when the generator
// cannot overload a sink by construction.
func addCapped(msgs [][]Message, recv []int, src, dst int, rng *rand.Rand) {
	limit := len(msgs)
	if recv != nil {
		limit = len(recv)
	}
	if len(msgs[src]) >= limit {
		return
	}
	if recv != nil {
		if recv[dst] >= len(recv) {
			return
		}
		recv[dst]++
	}
	msgs[src] = append(msgs[src], Message{Src: src, Dst: dst, Seq: len(msgs[src]), Payload: rng.Int63n(1 << 40)})
}

// checkRouteInvariants runs one instance and checks the paper's routing
// invariants on the result.
func checkRouteInvariants(t *testing.T, label string, n int, msgs [][]Message, opts ...Option) {
	t.Helper()
	res, err := Route(n, msgs, append([]Option{WithAlgorithm(AlgorithmAuto)}, opts...)...)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	// Exactly-once delivery: the multiset of deliveries equals the demand.
	sent := make([][]core.Message, n)
	delivered := make([][]core.Message, n)
	for i := 0; i < n; i++ {
		if i < len(msgs) {
			for _, m := range msgs[i] {
				sent[i] = append(sent[i], core.Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: m.Payload})
			}
		}
		for _, m := range res.Delivered[i] {
			delivered[i] = append(delivered[i], core.Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: m.Payload})
		}
	}
	if err := verify.Routing(sent, delivered); err != nil {
		t.Fatalf("%s (strategy %v): %v", label, res.Strategy, err)
	}
	// Theorem 3.7 round bound and the constant per-edge bandwidth.
	if res.Stats.Rounds > 16 {
		t.Errorf("%s: %d rounds exceed the Theorem 3.7 bound of 16 (strategy %v)", label, res.Stats.Rounds, res.Strategy)
	}
	if res.Stats.MaxEdgeWords > 64 {
		t.Errorf("%s: per-edge load %d words is not a small constant (strategy %v)", label, res.Stats.MaxEdgeWords, res.Strategy)
	}
	// Strategy-specific round counts.
	switch res.Strategy {
	case StrategyEmpty:
		if res.Stats.Rounds != 0 {
			t.Errorf("%s: empty strategy used %d rounds", label, res.Stats.Rounds)
		}
	case StrategyDirect:
		if res.Stats.Rounds != 1 {
			t.Errorf("%s: direct strategy used %d rounds, want 1", label, res.Stats.Rounds)
		}
	case StrategyBroadcast:
		if res.Stats.Rounds > 9 {
			t.Errorf("%s: broadcast strategy used %d rounds, cap is 1+8", label, res.Stats.Rounds)
		}
	}
}

func TestPropertyRouteInvariants(t *testing.T) {
	t.Parallel()
	for _, n := range []int{9, 16, 33, 64} {
		for _, shape := range routeShapes {
			for seed := int64(1); seed <= 3; seed++ {
				msgs := shape.gen(n, rand.New(rand.NewSource(seed)))
				label := fmt.Sprintf("n=%d/%s/seed=%d", n, shape.name, seed)
				checkRouteInvariants(t, label+"/dense", n, msgs)
				checkRouteInvariants(t, label+"/sparse", n, msgs, WithSparsePath())
			}
		}
	}
}

// TestPropertyRouteInvariantsAtScale sweeps the O(n)-message shapes at
// n=4096 through the sparse step executors.
func TestPropertyRouteInvariantsAtScale(t *testing.T) {
	const n = 4096
	for _, shape := range routeShapes {
		if !shape.sparse {
			continue
		}
		msgs := shape.gen(n, rand.New(rand.NewSource(1)))
		checkRouteInvariants(t, fmt.Sprintf("n=%d/%s", n, shape.name), n, msgs, WithSparsePath())
	}
}

// sortShapes are the generated key distribution families.
var sortShapes = []struct {
	name   string
	sparse bool
	gen    func(n int, rng *rand.Rand) [][]int64
}{
	{"uniform", false, func(n int, rng *rand.Rand) [][]int64 {
		values := make([][]int64, n)
		for i := 0; i < n; i++ {
			for k := rng.Intn(n + 1); k > 0; k-- {
				values[i] = append(values[i], rng.Int63n(1<<40))
			}
		}
		return values
	}},
	{"duplicate-heavy", false, func(n int, rng *rand.Rand) [][]int64 {
		values := make([][]int64, n)
		for i := 0; i < n; i++ {
			for k := rng.Intn(n + 1); k > 0; k-- {
				values[i] = append(values[i], int64(rng.Intn(5)))
			}
		}
		return values
	}},
	{"presorted-gappy", true, func(n int, rng *rand.Rand) [][]int64 {
		values := make([][]int64, n)
		v := int64(0)
		for i := 0; i < n; i++ {
			for k := rng.Intn(4); k > 0; k-- {
				values[i] = append(values[i], v)
				v += 1 + rng.Int63n(3)
			}
		}
		return values
	}},
	{"ragged", false, func(n int, rng *rand.Rand) [][]int64 {
		values := make([][]int64, 1+rng.Intn(n))
		for i := range values {
			if i%4 == 0 {
				continue
			}
			for k := rng.Intn(5); k > 0; k-- {
				values[i] = append(values[i], rng.Int63n(64))
			}
		}
		return values
	}},
}

// checkSortInvariants runs one instance and checks the paper's sorting
// invariants — Theorem 4.5's round bound and Problem 4.1's output contract
// with footnote-5 tie-breaking — on the result.
func checkSortInvariants(t *testing.T, label string, n int, values [][]int64, opts ...Option) {
	t.Helper()
	res, err := Sort(n, values, append([]Option{WithAlgorithm(AlgorithmAuto)}, opts...)...)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	input := make([][]core.Key, n)
	results := make([]*core.SortResult, n)
	for i := 0; i < n; i++ {
		if i < len(values) {
			for j, v := range values[i] {
				input[i] = append(input[i], core.Key{Value: v, Origin: i, Seq: j})
			}
		}
		sr := &core.SortResult{Start: res.Starts[i], Total: res.Total}
		for _, k := range res.Batches[i] {
			sr.Batch = append(sr.Batch, core.Key{Value: k.Value, Origin: k.Origin, Seq: k.Seq})
		}
		results[i] = sr
	}
	if err := verify.Sorting(input, results); err != nil {
		t.Fatalf("%s (strategy %v): %v", label, res.Strategy, err)
	}
	if res.Stats.Rounds > 37 {
		t.Errorf("%s: %d rounds exceed the Theorem 4.5 bound of 37 (strategy %v)", label, res.Stats.Rounds, res.Strategy)
	}
	if res.Stats.MaxEdgeWords > 64 {
		t.Errorf("%s: per-edge load %d words is not a small constant (strategy %v)", label, res.Stats.MaxEdgeWords, res.Strategy)
	}
}

func TestPropertySortInvariants(t *testing.T) {
	t.Parallel()
	for _, n := range []int{9, 16, 33, 64} {
		for _, shape := range sortShapes {
			for seed := int64(1); seed <= 3; seed++ {
				values := shape.gen(n, rand.New(rand.NewSource(seed)))
				label := fmt.Sprintf("n=%d/%s/seed=%d", n, shape.name, seed)
				checkSortInvariants(t, label+"/dense", n, values)
				checkSortInvariants(t, label+"/sparse", n, values, WithSparsePath())
			}
		}
	}
}

// TestPropertySortInvariantsAtScale sweeps the O(n)-key shapes at n=4096
// through the sparse step executors.
func TestPropertySortInvariantsAtScale(t *testing.T) {
	const n = 4096
	for _, shape := range sortShapes {
		if !shape.sparse {
			continue
		}
		values := shape.gen(n, rand.New(rand.NewSource(1)))
		checkSortInvariants(t, fmt.Sprintf("n=%d/%s", n, shape.name), n, values, WithSparsePath())
	}
}
