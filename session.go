package congestedclique

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"congestedclique/internal/baseline"
	"congestedclique/internal/clique"
	"congestedclique/internal/core"
)

// Clique is a long-lived session handle over a simulated congested clique of
// n nodes. It amortizes engine construction — delivery arenas, metric
// buffers, schedule-cache maps, input staging buffers — across an unbounded
// stream of operations: the per-operation cost of a handle is the protocol
// itself, not rebuilding the simulator.
//
// Concurrency: a handle is a concurrent executor over a pool of engines.
// New(n, WithMaxConcurrency(k)) allows up to k independent operations to
// execute in parallel on one handle; engines are built lazily, so a handle
// that never sees concurrent calls only ever pays for one. The default is
// k = 1, which preserves the serialized behaviour of earlier versions
// exactly. Every operation checks an engine (plus its private staging
// buffers) out of the pool, runs, and returns it; input validation and
// option resolution happen before checkout, so malformed calls never occupy
// an engine. Results are bit-identical to serial execution regardless of k —
// each engine run is deterministic and fully isolated.
//
// Lifetime: a handle owns its engines until Close; afterwards every method
// fails with an error wrapping ErrClosed. Close waits for in-flight
// operations to drain before releasing the engines.
//
// Every result is a plain value owned by the caller; nothing a method
// returns aliases engine memory, so results remain valid across later calls
// and after Close.
type Clique struct {
	n   int
	cfg config

	// slots is the checkout semaphore: it starts with maxConcurrency tokens,
	// every operation holds one token for its whole duration, and Close
	// drains all of them — owning every token proves no operation is in
	// flight. closedCh is closed by Close so waiters fail fast with ErrClosed
	// instead of blocking on a draining semaphore.
	slots    chan struct{}
	closedCh chan struct{}

	// mu guards the pool bookkeeping below (never held across an engine run).
	mu     sync.Mutex
	closed bool
	// idle holds checked-in units; engines lists every unit ever built (kept
	// after Close so CumulativeStats stays readable).
	idle    []*execUnit
	engines []*execUnit

	// retries counts WithRetry re-run attempts; failedOps counts operations
	// that passed validation but ultimately returned an error (see
	// CumulativeStats).
	retries   atomic.Int64
	failedOps atomic.Int64

	// planCache is the cross-run plan and schedule cache (WithPlanCache;
	// nil when disabled). One instance per handle, shared by every engine
	// of the pool — core.PlanCache is safe for concurrent use.
	planCache *core.PlanCache
}

// execUnit is one poolable executor: an engine plus the input staging and
// result-gathering scratch its runs read while in flight. Exactly one
// operation owns a unit between checkout and release, so nothing here needs
// locking.
type execUnit struct {
	n  int
	nw *clique.Network

	msgIn   [][]core.Message
	keyIn   [][]core.Key
	intIn   [][]int
	msgOut  [][]core.Message
	sortOut []*core.SortResult
	rankOut []*core.RankResult
	keyOut  []core.Key
}

func newExecUnit(n int, cfg config) (*execUnit, error) {
	nw, err := buildNetwork(n, cfg)
	if err != nil {
		return nil, err
	}
	return &execUnit{
		n:      n,
		nw:     nw,
		msgIn:  make([][]core.Message, n),
		keyIn:  make([][]core.Key, n),
		intIn:  make([][]int, n),
		msgOut: make([][]core.Message, n),
	}, nil
}

// New builds a session handle for a congested clique of n >= 1 nodes.
// Handle-scoped options (WithStrictBandwidth, WithSharedScheduleCache,
// WithWorkers, WithMaxConcurrency) shape the engine pool; call-scoped
// options (WithAlgorithm, WithSeed) passed here become the handle's
// defaults, overridable per call. The first engine is built eagerly (so
// construction errors surface here); engines beyond the first are built
// lazily, only when operations actually overlap. Close the handle when done
// to release the engines' pooled buffers.
func New(n int, opts ...Option) (*Clique, error) {
	if err := validateNodeCount(n); err != nil {
		return nil, err
	}
	cfg, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	k := cfg.maxConcurrency
	if k < 1 {
		k = 1
	}
	u, err := newExecUnit(n, cfg)
	if err != nil {
		return nil, err
	}
	c := &Clique{
		n:        n,
		cfg:      cfg,
		slots:    make(chan struct{}, k),
		closedCh: make(chan struct{}),
		idle:     []*execUnit{u},
		engines:  []*execUnit{u},
	}
	if cfg.planCacheCap > 0 {
		c.planCache = core.NewPlanCache(cfg.planCacheCap)
	}
	for i := 0; i < k; i++ {
		c.slots <- struct{}{}
	}
	return c, nil
}

// N returns the clique size the handle was built for.
func (c *Clique) N() int { return c.n }

// MaxConcurrency returns the handle's engine-pool capacity: the maximum
// number of operations that can execute in parallel on it (see
// WithMaxConcurrency).
func (c *Clique) MaxConcurrency() int { return cap(c.slots) }

// Close waits for every in-flight operation to complete, releases all pooled
// engine buffers and marks the handle unusable: operations started after
// Close — including ones already waiting for an engine — fail with an error
// wrapping ErrClosed. Close is idempotent; the first call performs the
// drain.
func (c *Clique) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closedCh)
	c.mu.Unlock()

	// Drain the semaphore: every in-flight operation holds one token and
	// returns it on completion, so owning all of them proves quiescence.
	for i := 0; i < cap(c.slots); i++ {
		<-c.slots
	}

	c.mu.Lock()
	engines := c.engines
	c.idle = nil
	c.mu.Unlock()
	var firstErr error
	for _, u := range engines {
		if err := u.nw.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// CumulativeStats returns the aggregated cost of every operation that
// completed successfully on this handle, merged across the engine pool:
// totals summed across operations, maxima taken over operations; failed and
// cancelled operations are not counted. Operations still in flight are not
// included until they complete. Each result's own Stats field remains the
// per-operation view.
func (c *Clique) CumulativeStats() CumulativeStats {
	c.mu.Lock()
	engines := slices.Clone(c.engines)
	c.mu.Unlock()
	var total clique.Cumulative
	for _, u := range engines {
		total.Merge(u.nw.CumulativeMetrics())
	}
	cs := statsFromCumulative(total)
	cs.Retries = c.retries.Load()
	cs.FailedOperations = c.failedOps.Load()
	if c.planCache != nil {
		cs.PlanCacheHits, cs.PlanCacheMisses, cs.PlanCacheInvalidations = c.planCache.Counters()
	}
	return cs
}

// checkout obtains exclusive ownership of one executor, building a new one
// if none is idle and the pool is below capacity. The caller must release
// the unit when the operation completes. A cancelled context fails the wait;
// a closed handle fails with ErrClosed.
func (c *Clique) checkout(ctx context.Context) (*execUnit, error) {
	var done <-chan struct{}
	if ctx != nil {
		// Fail a pre-cancelled context deterministically (the select below
		// chooses randomly among ready cases).
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("congestedclique: operation cancelled: %w", err)
		}
		done = ctx.Done()
	}
	select {
	case <-c.closedCh:
		return nil, ErrClosed
	case <-done:
		return nil, fmt.Errorf("congestedclique: operation cancelled while waiting for an engine: %w", ctx.Err())
	case <-c.slots:
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.slots <- struct{}{} // hand the token back to the draining Close
		return nil, ErrClosed
	}
	if k := len(c.idle); k > 0 {
		u := c.idle[k-1]
		c.idle[k-1] = nil
		c.idle = c.idle[:k-1]
		c.mu.Unlock()
		return u, nil
	}
	c.mu.Unlock()
	// No idle unit but a free token: grow the pool. Holding a token bounds
	// the number of units ever built by the pool capacity. Construction runs
	// outside mu — it is the expensive part, and serializing it would stall
	// concurrent releases.
	u, err := newExecUnit(c.n, c.cfg)
	if err != nil {
		c.slots <- struct{}{}
		return nil, err
	}
	c.mu.Lock()
	c.engines = append(c.engines, u)
	c.mu.Unlock()
	return u, nil
}

// release checks a unit back into the pool and returns its semaphore token.
func (c *Clique) release(u *execUnit) {
	c.mu.Lock()
	c.idle = append(c.idle, u)
	c.mu.Unlock()
	c.slots <- struct{}{}
}

// runOp is the execution wrapper every operation body runs under: it checks
// an engine out of the pool, arms the call's fault plan (first attempt
// only), runs body, and — when the failure is transient (see ErrTransient)
// and the call carries a WithRetry budget — re-runs on a freshly
// checked-out engine with exponential backoff. Failures are classified
// before the retry decision, so the error a caller finally sees satisfies
// errors.Is(err, ErrTransient) exactly when a (larger) retry budget could
// have absorbed it. Engine-level cumulative statistics only ever count
// completed runs, so a retried operation contributes exactly its successful
// attempt.
func runOp[T any](c *Clique, ctx context.Context, cfg config, body func(*execUnit) (T, error)) (T, error) {
	var zero T
	var err error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if werr := sleepBackoff(ctx, cfg.retryBackoff, attempt-1); werr != nil {
				err = werr
				break
			}
		}
		var u *execUnit
		u, err = c.checkout(ctx)
		if err != nil {
			// Pool-level failure (closed handle, cancelled wait): permanent.
			break
		}
		var res T
		res, err = func() (T, error) {
			defer func() {
				if len(cfg.faults) > 0 {
					// Disarm before the unit returns to the pool: a plan the
					// run consumed is already gone, and one that never ran
					// (body failed before the engine run) must not leak into
					// another caller's operation.
					u.nw.SetFaultPlan(nil)
				}
				c.release(u)
			}()
			if attempt == 0 && len(cfg.faults) > 0 {
				u.nw.SetFaultPlan(&clique.FaultPlan{Faults: cfg.faults})
			}
			return body(u)
		}()
		if err == nil {
			return res, nil
		}
		err = classifyTransient(err)
		if attempt >= cfg.retries || !errors.Is(err, ErrTransient) {
			break
		}
	}
	c.failedOps.Add(1)
	return zero, err
}

// sleepBackoff sleeps the exponential backoff of retry number retry
// (0-based): backoff << retry, capped at 16 doublings. A cancelled context
// cuts the sleep short and fails the operation.
func sleepBackoff(ctx context.Context, backoff time.Duration, retry int) error {
	if backoff <= 0 {
		return nil
	}
	if retry > 16 {
		retry = 16
	}
	t := time.NewTimer(backoff << retry)
	defer t.Stop()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-t.C:
		return nil
	case <-done:
		return fmt.Errorf("congestedclique: operation cancelled during retry backoff: %w", ctx.Err())
	}
}

// validateFaultCfg rejects malformed injection schedules (out-of-range
// target nodes, and so on) before an engine is checked out; fault-free calls
// pay nothing.
func validateFaultCfg(n int, cfg config) error {
	if len(cfg.faults) == 0 {
		return nil
	}
	plan := clique.FaultPlan{Faults: cfg.faults}
	if err := plan.Validate(n); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidInstance, err)
	}
	return nil
}

// callConfig layers per-call options over the handle defaults.
func (c *Clique) callConfig(opts []Option) (config, error) {
	return applyCallOptions(c.cfg, opts)
}

// sortBasedConfig is callConfig for the sorting-based corollary operations
// (Rank, SelectKth, Median, Mode, CountSmallKeys), which only have
// deterministic implementations. LowCompute and AlgorithmAuto fall back to
// the deterministic path (the planner covers Route, Sort and SortKeys;
// the corollary protocols always run their pinned deterministic schedules);
// Randomized and NaiveDirect are rejected rather than silently running a
// different algorithm than the caller asked to measure.
func (c *Clique) sortBasedConfig(op string, opts []Option) (config, error) {
	cfg, err := applyCallOptions(c.cfg, opts)
	if err != nil {
		return cfg, err
	}
	switch cfg.algorithm {
	case Deterministic, LowCompute, AlgorithmAuto:
		return cfg, nil
	default:
		return cfg, fmt.Errorf("%w: %s only has the deterministic implementation (got %v)", ErrUnsupportedAlgorithm, op, cfg.algorithm)
	}
}

// routeValidatorPool recycles the validation scratch across calls and
// handles: validation runs before an engine is checked out (so malformed
// inputs never occupy one), which means concurrent calls validate
// concurrently and cannot share a per-handle scratch.
var routeValidatorPool = sync.Pool{New: func() interface{} { return new(routeValidator) }}

// validateRoute checks the Problem 3.1 preconditions using pooled scratch.
func validateRoute(n int, msgs [][]Message) error {
	v := routeValidatorPool.Get().(*routeValidator)
	err := v.validate(n, msgs)
	routeValidatorPool.Put(v)
	return err
}

// Route solves the Information Distribution Task (Problem 3.1): msgs[i] are
// the messages originating at node i (at most n per node, each destined to a
// node in [0, n)), and the result lists what every node received. The
// default algorithm is the paper's deterministic 16-round solution
// (Theorem 3.7); see WithAlgorithm for the 12-round low-computation variant
// (Theorem 5.4) and the comparison baselines.
func (c *Clique) Route(ctx context.Context, msgs [][]Message, opts ...Option) (*RouteResult, error) {
	cfg, err := c.callConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := validateRoute(c.n, msgs); err != nil {
		return nil, err
	}
	if err := validateFaultCfg(c.n, cfg); err != nil {
		return nil, err
	}
	return runOp(c, ctx, cfg, func(u *execUnit) (*RouteResult, error) {
		return u.route(ctx, cfg, msgs, c.planCache)
	})
}

// routeValidated runs Route on an instance the caller has already validated
// (the one-shot shim validates before building the handle, so the happy
// path pays one validation scan, not two).
func (c *Clique) routeValidated(ctx context.Context, msgs [][]Message) (*RouteResult, error) {
	if err := validateFaultCfg(c.n, c.cfg); err != nil {
		return nil, err
	}
	return runOp(c, ctx, c.cfg, func(u *execUnit) (*RouteResult, error) {
		return u.route(ctx, c.cfg, msgs, c.planCache)
	})
}

// route is the routing pipeline body; the caller owns the unit and has
// validated msgs.
func (u *execUnit) route(ctx context.Context, cfg config, msgs [][]Message, pc *core.PlanCache) (*RouteResult, error) {
	inputs := u.msgIn
	for i := 0; i < u.n; i++ {
		if i < len(msgs) && len(msgs[i]) > 0 {
			s := inputs[i]
			if cap(s) < len(msgs[i]) {
				s = make([]core.Message, len(msgs[i]))
			} else {
				s = s[:len(msgs[i])]
			}
			for j, m := range msgs[i] {
				s[j] = toCoreMessage(m)
			}
			inputs[i] = s
		} else {
			inputs[i] = inputs[i][:0]
		}
	}

	// Under AlgorithmAuto the demand-aware planner classifies the staged
	// instance once, centrally (the plan is a pure function of the instance,
	// so every node dispatching on it agrees on the schedule — see
	// internal/core/planner.go for the model-honesty note). With a plan cache
	// the fingerprint lookup replaces re-planning: a validated hit (exact
	// instance compare, never fingerprint trust alone) reuses the cached
	// verdict, seeds the engine's shared-compute cache for this one run, and
	// — for pipeline instances — replays the captured announcement schedule,
	// skipping the schedule-establishment rounds. A miss plans as usual and
	// captures for next time.
	var (
		plan     core.RoutePlan
		fp       core.Fingerprint
		cacheHit bool
		sd       *core.SparseDemand
	)
	if cfg.sparsePath && cfg.algorithm == AlgorithmAuto && u.n > 1 {
		// Sparse scale-out path (WithSparsePath): the instance is held as a
		// per-source adjacency and — when the plan's strategy has a step-mode
		// executor — run on the worker-pool scheduler, so no per-node dense
		// buffer or goroutine stack exists. Wire behaviour, results and stats
		// are bit-identical to the blocking path.
		var sdErr error
		sd, sdErr = core.NewSparseDemand(u.n, inputs)
		if sdErr != nil {
			return nil, sdErr
		}
	}
	if cfg.algorithm == AlgorithmAuto {
		if pc != nil {
			var hit *core.RouteHit
			fp, hit = pc.LookupRoute(u.n, inputs)
			if hit != nil {
				cacheHit = true
				plan = hit.Plan
				plan.Sched = hit.Sched
				if hit.Shared.Len() > 0 {
					u.nw.ArmSharedSeed(hit.Shared)
					// Disarm on every exit: a seed the run consumed is gone
					// already, and one that never ran (the run failed before
					// starting) must not leak into another caller's operation.
					defer u.nw.ArmSharedSeed(clique.SharedSnapshot{})
				}
			}
		}
		if !cacheHit {
			if sd != nil {
				plan = core.PlanRouteSparse(sd)
			} else {
				plan = core.PlanRoute(u.n, inputs)
			}
			if pc != nil && plan.Strategy == core.StrategyPipeline {
				plan.Capture = core.NewRouteScheduleCapture(u.n)
			}
		}
		if pc != nil || cfg.census {
			plan.Census = true
			if pc != nil {
				plan.CensusHasFP = true
				plan.CensusFP = fp.Hash
			}
		}
	}

	outputs := u.msgOut
	var runErr error
	if sd != nil && core.SparseStepCapable(plan.Strategy) {
		run, buildErr := core.NewSparseRouteRun(sd, plan)
		if buildErr != nil {
			return nil, buildErr
		}
		runErr = u.nw.RunRoundsContext(ctx, run.Step)
		if runErr == nil {
			for i := 0; i < u.n; i++ {
				outputs[i] = run.Output(i)
			}
		}
	} else {
		runErr = u.nw.RunContext(ctx, func(nd *clique.Node) error {
			var (
				out  []core.Message
				rErr error
			)
			switch cfg.algorithm {
			case Deterministic:
				out, rErr = core.Route(nd, inputs[nd.ID()])
			case LowCompute:
				out, rErr = core.LowComputeRoute(nd, inputs[nd.ID()])
			case Randomized:
				out, rErr = baseline.RandomizedRoute(nd, inputs[nd.ID()], cfg.seed)
			case NaiveDirect:
				out, rErr = baseline.NaiveDirectRoute(nd, inputs[nd.ID()])
			case AlgorithmAuto:
				out, rErr = core.AutoRoute(nd, inputs[nd.ID()], plan)
			default:
				rErr = fmt.Errorf("congestedclique: unsupported algorithm %v", cfg.algorithm)
			}
			if rErr != nil {
				return rErr
			}
			outputs[nd.ID()] = out
			return nil
		})
	}
	if runErr != nil {
		return nil, runErr
	}
	if pc != nil && cfg.algorithm == AlgorithmAuto && !cacheHit {
		// Only a fully successful run is stored: the captured schedule (if
		// any) is complete, and the shared-compute snapshot holds exactly the
		// colorings and balance plans this instance established.
		pc.StoreRoute(fp, u.n, inputs, plan, plan.Capture, u.nw.CaptureShared())
	}

	res := &RouteResult{Delivered: make([][]Message, u.n), Strategy: strategyFromCore(plan.Strategy), Stats: statsFromMetrics(u.nw.Metrics())}
	for i := range outputs {
		if out := outputs[i]; len(out) > 0 {
			d := make([]Message, len(out))
			for j, m := range out {
				d[j] = fromCoreMessage(m)
			}
			res.Delivered[i] = d
		}
		outputs[i] = nil
	}
	return res, nil
}

// Sort sorts the values of the clique: values[i] are node i's keys (at most
// n per node). Node i's batch of the globally sorted sequence is returned in
// Batches[i]. The default algorithm is the paper's 37-round deterministic
// Algorithm 4 (Theorem 4.5); WithAlgorithm(AlgorithmAuto) consults the
// demand-aware sorting planner, which diverts pre-sorted and small-domain
// instances to cheaper schedules with identical output
// (SortResult.Strategy reports the choice); WithAlgorithm(Randomized)
// selects the sample-sort baseline, LowCompute falls back to Deterministic
// (documented on the constant), and NaiveDirect is rejected with
// ErrUnsupportedAlgorithm.
func (c *Clique) Sort(ctx context.Context, values [][]int64, opts ...Option) (*SortResult, error) {
	cfg, err := c.callConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := validateValues(c.n, values); err != nil {
		return nil, err
	}
	if err := rejectNaiveDirectSort(cfg); err != nil {
		return nil, err
	}
	if err := validateFaultCfg(c.n, cfg); err != nil {
		return nil, err
	}
	return runOp(c, ctx, cfg, func(u *execUnit) (*SortResult, error) {
		return u.sortStaged(ctx, cfg, u.stageValues(values), c.planCache)
	})
}

// SortKeys is Sort for callers that already carry Key structures (for
// example to preserve their own Origin/Seq bookkeeping).
func (c *Clique) SortKeys(ctx context.Context, keys [][]Key, opts ...Option) (*SortResult, error) {
	cfg, err := c.callConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := validateSortingInstance(c.n, keys); err != nil {
		return nil, err
	}
	if err := rejectNaiveDirectSort(cfg); err != nil {
		return nil, err
	}
	if err := validateFaultCfg(c.n, cfg); err != nil {
		return nil, err
	}
	return runOp(c, ctx, cfg, func(u *execUnit) (*SortResult, error) {
		return u.sortKeys(ctx, cfg, keys, c.planCache)
	})
}

// sortKeysValidated is SortKeys minus the validation scan, for the one-shot
// shim which has already validated (see routeValidated).
func (c *Clique) sortKeysValidated(ctx context.Context, keys [][]Key) (*SortResult, error) {
	if err := rejectNaiveDirectSort(c.cfg); err != nil {
		return nil, err
	}
	if err := validateFaultCfg(c.n, c.cfg); err != nil {
		return nil, err
	}
	return runOp(c, ctx, c.cfg, func(u *execUnit) (*SortResult, error) {
		return u.sortKeys(ctx, c.cfg, keys, c.planCache)
	})
}

// rejectNaiveDirectSort is the pre-checkout guard shared by the sorting
// entry points: naive-direct has no sorting counterpart.
func rejectNaiveDirectSort(cfg config) error {
	if cfg.algorithm == NaiveDirect {
		return fmt.Errorf("%w: naive-direct delivers messages, it has no sorting counterpart (use Deterministic or Randomized)", ErrUnsupportedAlgorithm)
	}
	return nil
}

// sortKeys is the key-sorting pipeline body; the caller owns the unit and
// has validated keys.
func (u *execUnit) sortKeys(ctx context.Context, cfg config, keys [][]Key, pc *core.PlanCache) (*SortResult, error) {
	inputs := u.keyIn
	for i := 0; i < u.n; i++ {
		if i < len(keys) && len(keys[i]) > 0 {
			s := inputs[i]
			if cap(s) < len(keys[i]) {
				s = make([]core.Key, len(keys[i]))
			} else {
				s = s[:len(keys[i])]
			}
			for j, k := range keys[i] {
				s[j] = toCoreKey(k)
			}
			inputs[i] = s
		} else {
			inputs[i] = inputs[i][:0]
		}
	}
	return u.sortStaged(ctx, cfg, inputs, pc)
}

// sortStaged runs the sorting pipeline on inputs already staged as core keys
// (the caller owns the unit).
func (u *execUnit) sortStaged(ctx context.Context, cfg config, inputs [][]core.Key, pc *core.PlanCache) (*SortResult, error) {
	if u.sortOut == nil {
		u.sortOut = make([]*core.SortResult, u.n)
	}
	results := u.sortOut

	// Under AlgorithmAuto the sorting planner classifies the staged instance
	// once, centrally (the plan is a pure function of the instance, so every
	// node dispatching on it agrees on the schedule — see
	// internal/core/planner_sort.go for the model-honesty note). The plan
	// cache stores the verdict plus the shared-compute snapshot; instances
	// with non-canonical Origin/Seq labels (possible via SortKeys) bypass the
	// cache entirely, since the fingerprint only covers values.
	var (
		plan      core.SortPlan
		fp        core.Fingerprint
		cacheable bool
		cacheHit  bool
	)
	if cfg.algorithm == AlgorithmAuto {
		if pc != nil {
			var hit *core.SortHit
			fp, hit, cacheable = pc.LookupSort(u.n, inputs)
			if hit != nil {
				cacheHit = true
				plan = hit.Plan
				if hit.Shared.Len() > 0 {
					u.nw.ArmSharedSeed(hit.Shared)
					// Disarm on every exit (see route): a seed that never ran
					// must not leak into another caller's operation.
					defer u.nw.ArmSharedSeed(clique.SharedSnapshot{})
				}
			}
		}
		if !cacheHit {
			plan = core.PlanSort(u.n, inputs)
		}
		if pc != nil || cfg.census {
			plan.Census = true
			if pc != nil && cacheable {
				plan.CensusHasFP = true
				plan.CensusFP = fp.Hash
			}
		}
	}

	var runErr error
	if cfg.sparsePath && cfg.algorithm == AlgorithmAuto && u.n > 1 && core.SparseSortStepCapable(plan.Strategy) {
		// Sparse scale-out path (WithSparsePath): the empty and presorted
		// arms run as step programs on the worker-pool scheduler — same wire
		// traffic, results and stats as the blocking path, no per-node dense
		// comm scratch or goroutine stack.
		run, buildErr := core.NewSparseSortRun(u.n, inputs, plan)
		if buildErr != nil {
			return nil, buildErr
		}
		runErr = u.nw.RunRoundsContext(ctx, run.Step)
		if runErr == nil {
			for i := range results {
				results[i] = run.Result(i)
			}
		}
	} else {
		runErr = u.nw.RunContext(ctx, func(nd *clique.Node) error {
			var (
				res  *core.SortResult
				sErr error
			)
			switch cfg.algorithm {
			case Deterministic, LowCompute:
				res, sErr = core.Sort(nd, inputs[nd.ID()])
			case AlgorithmAuto:
				res, sErr = core.AutoSort(nd, inputs[nd.ID()], plan)
			case Randomized:
				res, sErr = baseline.RandomizedSampleSort(nd, inputs[nd.ID()], cfg.seed)
			default:
				sErr = fmt.Errorf("congestedclique: unsupported algorithm %v", cfg.algorithm)
			}
			if sErr != nil {
				return sErr
			}
			results[nd.ID()] = res
			return nil
		})
	}
	if runErr != nil {
		return nil, runErr
	}
	if pc != nil && cfg.algorithm == AlgorithmAuto && cacheable && !cacheHit {
		pc.StoreSort(fp, u.n, inputs, plan, u.nw.CaptureShared())
	}

	out := &SortResult{
		Batches:  make([][]Key, u.n),
		Starts:   make([]int, u.n),
		Strategy: sortStrategyFromCore(plan.Strategy),
		Stats:    statsFromMetrics(u.nw.Metrics()),
	}
	for i := range results {
		res := results[i]
		out.Total = res.Total
		out.Starts[i] = res.Start
		if len(res.Batch) > 0 {
			b := make([]Key, len(res.Batch))
			for j, k := range res.Batch {
				b[j] = fromCoreKey(k)
			}
			out.Batches[i] = b
		}
		results[i] = nil
	}
	return out, nil
}

// Rank computes, for every input value, its index in the sorted sequence of
// distinct values present in the system; duplicate values share an index
// (Corollary 4.6).
func (c *Clique) Rank(ctx context.Context, values [][]int64, opts ...Option) (*RankResult, error) {
	cfg, err := c.sortBasedConfig("Rank", opts)
	if err != nil {
		return nil, err
	}
	if err := validateValues(c.n, values); err != nil {
		return nil, err
	}
	if err := validateFaultCfg(c.n, cfg); err != nil {
		return nil, err
	}
	return runOp(c, ctx, cfg, func(u *execUnit) (*RankResult, error) {
		return u.rank(ctx, values)
	})
}

// rank is the rank pipeline body (the caller owns the unit).
func (u *execUnit) rank(ctx context.Context, values [][]int64) (*RankResult, error) {
	inputs := u.stageValues(values)
	if u.rankOut == nil {
		u.rankOut = make([]*core.RankResult, u.n)
	}
	results := u.rankOut
	runErr := u.nw.RunContext(ctx, func(nd *clique.Node) error {
		res, rErr := core.Rank(nd, inputs[nd.ID()])
		if rErr != nil {
			return rErr
		}
		results[nd.ID()] = res
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	out := &RankResult{Ranks: make([][]int, u.n), Stats: statsFromMetrics(u.nw.Metrics())}
	for i := range results {
		out.DistinctTotal = results[i].DistinctTotal
		if i < len(values) {
			out.Ranks[i] = make([]int, len(values[i]))
			for j := range values[i] {
				out.Ranks[i][j] = results[i].Ranks[j]
			}
		}
		results[i] = nil
	}
	return out, nil
}

// SelectKth returns the key of global rank k (0-based) among all input
// values, together with the execution statistics.
func (c *Clique) SelectKth(ctx context.Context, values [][]int64, k int, opts ...Option) (Key, Stats, error) {
	return c.selectWith(ctx, "SelectKth", values, opts, func(ex clique.Exchanger, in []core.Key) (core.Key, error) {
		return core.Select(ex, in, k)
	})
}

// Median returns the lower median of all input values.
func (c *Clique) Median(ctx context.Context, values [][]int64, opts ...Option) (Key, Stats, error) {
	return c.selectWith(ctx, "Median", values, opts, core.Median)
}

// keyStats pairs a selection result with its execution statistics so the
// single-key operations can run under the generic retry wrapper.
type keyStats struct {
	key   Key
	stats Stats
}

// selectWith runs one single-key selection protocol (SelectKth, Median).
func (c *Clique) selectWith(ctx context.Context, op string, values [][]int64, opts []Option, pick func(clique.Exchanger, []core.Key) (core.Key, error)) (Key, Stats, error) {
	cfg, err := c.sortBasedConfig(op, opts)
	if err != nil {
		return Key{}, Stats{}, err
	}
	if err := validateValues(c.n, values); err != nil {
		return Key{}, Stats{}, err
	}
	if err := validateFaultCfg(c.n, cfg); err != nil {
		return Key{}, Stats{}, err
	}
	res, err := runOp(c, ctx, cfg, func(u *execUnit) (keyStats, error) {
		inputs := u.stageValues(values)
		if u.keyOut == nil {
			u.keyOut = make([]core.Key, u.n)
		}
		picked := u.keyOut
		runErr := u.nw.RunContext(ctx, func(nd *clique.Node) error {
			res, sErr := pick(nd, inputs[nd.ID()])
			if sErr != nil {
				return sErr
			}
			picked[nd.ID()] = res
			return nil
		})
		if runErr != nil {
			return keyStats{}, runErr
		}
		return keyStats{key: fromCoreKey(picked[0]), stats: statsFromMetrics(u.nw.Metrics())}, nil
	})
	if err != nil {
		return Key{}, Stats{}, err
	}
	return res.key, res.stats, nil
}

// Mode returns the most frequent value among all inputs (smallest value wins
// ties), computed by sorting plus one summary round.
func (c *Clique) Mode(ctx context.Context, values [][]int64, opts ...Option) (*ModeResult, error) {
	cfg, err := c.sortBasedConfig("Mode", opts)
	if err != nil {
		return nil, err
	}
	if err := validateValues(c.n, values); err != nil {
		return nil, err
	}
	if err := validateFaultCfg(c.n, cfg); err != nil {
		return nil, err
	}
	return runOp(c, ctx, cfg, func(u *execUnit) (*ModeResult, error) {
		inputs := u.stageValues(values)
		var mode core.ModeResult
		runErr := u.nw.RunContext(ctx, func(nd *clique.Node) error {
			res, mErr := core.Mode(nd, inputs[nd.ID()])
			if mErr != nil {
				return mErr
			}
			if nd.ID() == 0 {
				mode = *res
			}
			return nil
		})
		if runErr != nil {
			return nil, runErr
		}
		return &ModeResult{Value: mode.Value, Count: mode.Count, Stats: statsFromMetrics(u.nw.Metrics())}, nil
	})
}

// CountSmallKeys counts keys drawn from a small domain [0, domain) in two
// rounds of single-word messages (Section 6.3). The domain must satisfy
// domain * ceil(log2(n+1))^2 <= n.
func (c *Clique) CountSmallKeys(ctx context.Context, values [][]int, domain int, opts ...Option) (*HistogramResult, error) {
	cfg, err := c.sortBasedConfig("CountSmallKeys", opts)
	if err != nil {
		return nil, err
	}
	if err := validateSmallKeys(c.n, values, domain); err != nil {
		return nil, err
	}
	if err := validateFaultCfg(c.n, cfg); err != nil {
		return nil, err
	}
	return runOp(c, ctx, cfg, func(u *execUnit) (*HistogramResult, error) {
		inputs := u.intIn
		for i := 0; i < u.n; i++ {
			if i < len(values) {
				inputs[i] = values[i]
			} else {
				inputs[i] = nil
			}
		}
		var counts []int64
		runErr := u.nw.RunContext(ctx, func(nd *clique.Node) error {
			res, cErr := core.SmallKeyCount(nd, inputs[nd.ID()], domain)
			if cErr != nil {
				return cErr
			}
			if nd.ID() == 0 {
				counts = res.Counts
			}
			return nil
		})
		// intIn aliases the caller's rows (unlike msgIn/keyIn, which hold
		// unit-owned copies); drop the references so a long-lived handle never
		// pins a past caller's memory.
		clear(u.intIn)
		if runErr != nil {
			return nil, runErr
		}
		return &HistogramResult{Counts: counts, Stats: statsFromMetrics(u.nw.Metrics())}, nil
	})
}

// stageValues converts plain values into the unit's core-key staging
// buffers, attaching Origin/Seq labels (the caller owns the unit and has
// validated the shape).
func (u *execUnit) stageValues(values [][]int64) [][]core.Key {
	inputs := u.keyIn
	for i := 0; i < u.n; i++ {
		if i < len(values) && len(values[i]) > 0 {
			s := inputs[i]
			if cap(s) < len(values[i]) {
				s = make([]core.Key, len(values[i]))
			} else {
				s = s[:len(values[i])]
			}
			for j, v := range values[i] {
				s[j] = core.Key{Value: v, Origin: i, Seq: j}
			}
			inputs[i] = s
		} else {
			inputs[i] = inputs[i][:0]
		}
	}
	return inputs
}

// validateNodeCount is the shared n >= 1 precondition.
func validateNodeCount(n int) error {
	if n <= 0 {
		return fmt.Errorf("%w: need at least one node, got %d", ErrInvalidInstance, n)
	}
	return nil
}

// validateSmallKeys checks the Section 6.3 preconditions without touching an
// engine: the row shape, the domain feasibility bound (delegated to
// core.CheckSmallKeyDomain, the single source of truth the engine itself
// enforces), and that every value lies in [0, domain). A malformed call is
// rejected here, before a pool checkout.
func validateSmallKeys(n int, values [][]int, domain int) error {
	if len(values) > n {
		return fmt.Errorf("%w: %d input slots for %d nodes", ErrInvalidInstance, len(values), n)
	}
	if err := core.CheckSmallKeyDomain(n, domain); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidInstance, err)
	}
	for i, vs := range values {
		for _, v := range vs {
			if v < 0 || v >= domain {
				return fmt.Errorf("%w: node %d holds key %d outside domain [0,%d)", ErrInvalidInstance, i, v, domain)
			}
		}
	}
	return nil
}

// validateValues checks the Problem 4.1 shape for plain-value inputs.
func validateValues(n int, values [][]int64) error {
	if len(values) > n {
		return fmt.Errorf("%w: %d input slots for %d nodes", ErrInvalidInstance, len(values), n)
	}
	for i, vs := range values {
		if len(vs) > n {
			return fmt.Errorf("%w: node %d holds %d keys, Problem 4.1 allows at most n=%d", ErrInvalidInstance, i, len(vs), n)
		}
	}
	return nil
}

// routeValidator is the reusable scratch of validateRoute: a dense bitmap
// handles the common case of per-node sequence numbers in [0, len(msgs[i]))
// with zero allocation, and the rare out-of-window sequence numbers fall
// back to a reusable sorted scan — no per-node map is ever allocated, even
// on full-load instances.
type routeValidator struct {
	recv []int
	bits []uint64
	seqs []int
}

// validate checks the Problem 3.1 preconditions.
func (v *routeValidator) validate(n int, msgs [][]Message) error {
	if len(msgs) > n {
		return fmt.Errorf("%w: %d input slots for %d nodes", ErrInvalidInstance, len(msgs), n)
	}
	if cap(v.recv) < n {
		v.recv = make([]int, n)
	} else {
		v.recv = v.recv[:n]
		clear(v.recv)
	}
	for src, ms := range msgs {
		if len(ms) > n {
			return fmt.Errorf("%w: node %d sends %d messages, Problem 3.1 allows at most n=%d", ErrInvalidInstance, src, len(ms), n)
		}
		words := (len(ms) + 63) / 64
		if cap(v.bits) < words {
			v.bits = make([]uint64, words)
		} else {
			v.bits = v.bits[:words]
			clear(v.bits)
		}
		v.seqs = v.seqs[:0]
		for _, m := range ms {
			if m.Src != src {
				return fmt.Errorf("%w: message (%d->%d #%d) listed under node %d", ErrInvalidInstance, m.Src, m.Dst, m.Seq, src)
			}
			if m.Dst < 0 || m.Dst >= n {
				return fmt.Errorf("%w: message destination %d out of range [0,%d)", ErrInvalidInstance, m.Dst, n)
			}
			if uint(m.Seq) < uint(len(ms)) {
				w, b := m.Seq>>6, uint(m.Seq)&63
				if v.bits[w]&(1<<b) != 0 {
					return fmt.Errorf("%w: node %d has two messages with sequence number %d", ErrInvalidInstance, src, m.Seq)
				}
				v.bits[w] |= 1 << b
			} else {
				v.seqs = append(v.seqs, m.Seq)
			}
			v.recv[m.Dst]++
		}
		if len(v.seqs) > 1 {
			slices.Sort(v.seqs)
			for i := 1; i < len(v.seqs); i++ {
				if v.seqs[i] == v.seqs[i-1] {
					return fmt.Errorf("%w: node %d has two messages with sequence number %d", ErrInvalidInstance, src, v.seqs[i])
				}
			}
		}
	}
	for dst, r := range v.recv {
		if r > n {
			return fmt.Errorf("%w: node %d would receive %d messages, Problem 3.1 allows at most n=%d", ErrInvalidInstance, dst, r, n)
		}
	}
	return nil
}
